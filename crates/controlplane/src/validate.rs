//! "Basic policy validation of policy composition" (paper, §2).
//!
//! Two layers:
//!
//! * [`validate_spec`] — spec-level checks before compilation: name
//!   resolution, duplicate policies, exactly one forwarding owner,
//!   blackhole shadowing warnings.
//! * [`validate_rules`] — rule-level checks after compilation: two rules
//!   on the same switch/table/priority with overlapping matches but
//!   different instructions are a hard conflict; a lower-priority rule
//!   fully subsumed by a higher-priority one with different instructions
//!   is reported as shadowed (warning).

use crate::spec::{PolicyRule, PolicySpec};
use horse_openflow::messages::{CtrlMsg, FlowModCommand};
use horse_topology::Topology;
use horse_types::NodeId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Outcome of validation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Hard errors — the spec must not be deployed.
    pub errors: Vec<String>,
    /// Soft findings — deployable, but the operator should know.
    pub warnings: Vec<String>,
}

impl ValidationReport {
    /// True when no hard errors were found.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }

    fn error(&mut self, msg: impl Into<String>) {
        self.errors.push(msg.into());
    }

    fn warn(&mut self, msg: impl Into<String>) {
        self.warnings.push(msg.into());
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.errors {
            writeln!(f, "error: {e}")?;
        }
        for w in &self.warnings {
            writeln!(f, "warning: {w}")?;
        }
        Ok(())
    }
}

fn resolve_host(topo: &Topology, name: &str) -> Option<NodeId> {
    topo.node_by_name(name)
        .filter(|&id| topo.node(id).map(|n| n.kind.is_host()).unwrap_or(false))
}

/// Spec-level validation (see module docs).
pub fn validate_spec(spec: &PolicySpec, topo: &Topology) -> ValidationReport {
    let mut rep = ValidationReport::default();

    let mut forwarding_owners: Vec<&'static str> = Vec::new();
    let mut rate_pairs: HashSet<(String, String)> = HashSet::new();
    let mut peering_triples: HashSet<(String, String, String)> = HashSet::new();
    let mut blackholed: HashSet<String> = HashSet::new();

    let check_host = |rep: &mut ValidationReport, rule: &PolicyRule, name: &str| {
        if resolve_host(topo, name).is_none() {
            rep.error(format!(
                "{}: {:?} is not a host in the topology",
                rule.kind(),
                name
            ));
        }
    };

    for rule in &spec.policies {
        match rule {
            PolicyRule::MacForwarding => forwarding_owners.push("mac_forwarding"),
            PolicyRule::MacLearning => forwarding_owners.push("mac_learning"),
            PolicyRule::LoadBalancing { .. } => forwarding_owners.push("load_balancing"),
            PolicyRule::AppPeering { src, dst, app, .. } => {
                check_host(&mut rep, rule, src);
                check_host(&mut rep, rule, dst);
                if src == dst {
                    rep.error(format!("app_peering: src == dst ({src})"));
                }
                if !peering_triples.insert((src.clone(), dst.clone(), format!("{app}"))) {
                    rep.error(format!(
                        "app_peering: duplicate policy for ({src} -> {dst}, {app})"
                    ));
                }
            }
            PolicyRule::Blackhole { victim } => {
                check_host(&mut rep, rule, victim);
                blackholed.insert(victim.clone());
            }
            PolicyRule::SourceRouting { src, dst, via } => {
                check_host(&mut rep, rule, src);
                check_host(&mut rep, rule, dst);
                for w in via {
                    if topo.node_by_name(w).is_none() {
                        rep.error(format!("source_routing: unknown waypoint {w:?}"));
                    }
                }
            }
            PolicyRule::RateLimit {
                src,
                dst,
                rate_mbps,
            } => {
                check_host(&mut rep, rule, src);
                check_host(&mut rep, rule, dst);
                if *rate_mbps <= 0.0 {
                    rep.error(format!(
                        "rate_limit: non-positive rate {rate_mbps} for ({src} -> {dst})"
                    ));
                }
                if !rate_pairs.insert((src.clone(), dst.clone())) {
                    rep.error(format!("rate_limit: duplicate policy for ({src} -> {dst})"));
                }
            }
        }
    }

    if forwarding_owners.len() > 1 {
        rep.error(format!(
            "multiple forwarding owners: {} — pick one of mac_forwarding / mac_learning / load_balancing",
            forwarding_owners.join(", ")
        ));
    }
    if forwarding_owners.is_empty() {
        rep.warn("no forwarding policy: only explicitly routed traffic will flow");
    }

    // Shadowing: any policy whose destination is blackholed never sees
    // traffic (blackhole priority wins).
    for rule in &spec.policies {
        let dst = match rule {
            PolicyRule::AppPeering { dst, .. } => Some(dst),
            PolicyRule::SourceRouting { dst, .. } => Some(dst),
            PolicyRule::RateLimit { dst, .. } => Some(dst),
            _ => None,
        };
        if let Some(dst) = dst {
            if blackholed.contains(dst) {
                rep.warn(format!(
                    "{}: destination {dst} is blackholed — policy is shadowed",
                    rule.kind()
                ));
            }
        }
        // app-peering overrides source-routing for its application class
        if let PolicyRule::AppPeering { src, dst, app, .. } = rule {
            let sr = spec.policies.iter().any(|r| {
                matches!(r, PolicyRule::SourceRouting { src: s2, dst: d2, .. } if s2 == src && d2 == dst)
            });
            if sr {
                rep.warn(format!(
                    "app_peering({src}->{dst}, {app}) overrides source_routing for that class"
                ));
            }
        }
    }
    rep
}

/// Rule-level validation over compiled messages (see module docs).
pub fn validate_rules(msgs: &[(NodeId, CtrlMsg)]) -> ValidationReport {
    let mut rep = ValidationReport::default();
    // Group FlowMod Adds by (switch, table).
    let mut groups: HashMap<(NodeId, u8), Vec<&horse_openflow::table::FlowEntry>> = HashMap::new();
    for (sw, msg) in msgs {
        if let CtrlMsg::FlowMod(fm) = msg {
            if fm.command == FlowModCommand::Add {
                groups.entry((*sw, fm.table.0)).or_default().push(&fm.entry);
            }
        }
    }
    for ((sw, table), entries) in groups {
        for i in 0..entries.len() {
            for j in (i + 1)..entries.len() {
                let (a, b) = (entries[i], entries[j]);
                if !a.matcher.overlaps(&b.matcher) {
                    continue;
                }
                if a.priority == b.priority
                    && a.instructions != b.instructions
                    && a.matcher != b.matcher
                {
                    rep.error(format!(
                        "conflict on {sw} table {table}: [{}] and [{}] overlap at priority {} with different actions",
                        a.matcher, b.matcher, a.priority
                    ));
                } else if a.priority != b.priority && a.instructions != b.instructions {
                    let (hi, lo) = if a.priority > b.priority {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    if lo.matcher.is_subset_of(&hi.matcher) {
                        rep.warn(format!(
                            "shadow on {sw} table {table}: [{}] (prio {}) is subsumed by [{}] (prio {})",
                            lo.matcher, lo.priority, hi.matcher, hi.priority
                        ));
                    }
                }
            }
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LbMode;
    use horse_openflow::actions::Instruction;
    use horse_openflow::flow_match::FlowMatch;
    use horse_openflow::messages::FlowMod;
    use horse_openflow::table::FlowEntry;
    use horse_topology::builders;
    use horse_types::{AppClass, PortNo};

    fn fabric() -> Topology {
        builders::ixp_fabric(&builders::IxpFabricParams {
            members: 4,
            edge_switches: 4,
            core_switches: 2,
            ..Default::default()
        })
        .topology
    }

    #[test]
    fn figure1_spec_is_valid() {
        let rep = validate_spec(&PolicySpec::figure1(), &fabric());
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn unknown_names_are_errors() {
        let spec = PolicySpec::new().with(PolicyRule::Blackhole {
            victim: "ghost".into(),
        });
        let rep = validate_spec(&spec, &fabric());
        assert!(!rep.is_ok());
        assert!(rep.errors[0].contains("ghost"));
    }

    #[test]
    fn switch_name_is_not_a_host() {
        let spec = PolicySpec::new().with(PolicyRule::RateLimit {
            src: "e1".into(), // a switch, not a member
            dst: "m1".into(),
            rate_mbps: 100.0,
        });
        let rep = validate_spec(&spec, &fabric());
        assert!(!rep.is_ok());
    }

    #[test]
    fn multiple_forwarding_owners_rejected() {
        let spec = PolicySpec::new()
            .with(PolicyRule::MacForwarding)
            .with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp });
        let rep = validate_spec(&spec, &fabric());
        assert!(!rep.is_ok());
        assert!(rep.errors[0].contains("forwarding owners"));
    }

    #[test]
    fn no_forwarding_owner_is_a_warning() {
        let spec = PolicySpec::new().with(PolicyRule::Blackhole {
            victim: "m1".into(),
        });
        let rep = validate_spec(&spec, &fabric());
        assert!(rep.is_ok());
        assert!(!rep.warnings.is_empty());
    }

    #[test]
    fn duplicate_rate_limit_rejected() {
        let spec = PolicySpec::new()
            .with(PolicyRule::MacForwarding)
            .with(PolicyRule::RateLimit {
                src: "m1".into(),
                dst: "m2".into(),
                rate_mbps: 100.0,
            })
            .with(PolicyRule::RateLimit {
                src: "m1".into(),
                dst: "m2".into(),
                rate_mbps: 200.0,
            });
        let rep = validate_spec(&spec, &fabric());
        assert!(!rep.is_ok());
    }

    #[test]
    fn negative_rate_rejected() {
        let spec = PolicySpec::new().with(PolicyRule::RateLimit {
            src: "m1".into(),
            dst: "m2".into(),
            rate_mbps: -5.0,
        });
        assert!(!validate_spec(&spec, &fabric()).is_ok());
    }

    #[test]
    fn blackholed_destination_warns() {
        let spec = PolicySpec::new()
            .with(PolicyRule::MacForwarding)
            .with(PolicyRule::Blackhole {
                victim: "m3".into(),
            })
            .with(PolicyRule::AppPeering {
                src: "m1".into(),
                dst: "m3".into(),
                app: AppClass::Http,
                path_rank: 0,
            });
        let rep = validate_spec(&spec, &fabric());
        assert!(rep.is_ok(), "shadowing is a warning, not an error");
        assert!(rep.warnings.iter().any(|w| w.contains("shadowed")));
    }

    #[test]
    fn app_peering_overriding_source_routing_warns() {
        let spec = PolicySpec::new()
            .with(PolicyRule::MacForwarding)
            .with(PolicyRule::SourceRouting {
                src: "m1".into(),
                dst: "m4".into(),
                via: vec!["c1".into()],
            })
            .with(PolicyRule::AppPeering {
                src: "m1".into(),
                dst: "m4".into(),
                app: AppClass::Http,
                path_rank: 0,
            });
        let rep = validate_spec(&spec, &fabric());
        assert!(rep.is_ok());
        assert!(rep.warnings.iter().any(|w| w.contains("overrides")));
    }

    #[test]
    fn rule_conflict_same_priority_detected() {
        let m1 = FlowMatch::ANY.with_tp_dst(80);
        let m2 = FlowMatch::ANY.with_ip_proto(horse_types::IpProtocol::Tcp);
        let msgs = vec![
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    m1,
                    vec![Instruction::output(PortNo(1))],
                ))),
            ),
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    m2,
                    vec![Instruction::output(PortNo(2))],
                ))),
            ),
        ];
        let rep = validate_rules(&msgs);
        assert!(!rep.is_ok());
        assert!(rep.errors[0].contains("conflict"));
    }

    #[test]
    fn rule_shadow_detected_as_warning() {
        let wide = FlowMatch::ANY.with_tp_dst(80);
        let narrow = wide.with_ip_proto(horse_types::IpProtocol::Tcp);
        let msgs = vec![
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    100,
                    wide,
                    vec![Instruction::drop()],
                ))),
            ),
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    narrow,
                    vec![Instruction::output(PortNo(2))],
                ))),
            ),
        ];
        let rep = validate_rules(&msgs);
        assert!(rep.is_ok());
        assert!(rep.warnings[0].contains("shadow"));
    }

    #[test]
    fn disjoint_rules_are_clean() {
        let msgs = vec![
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    FlowMatch::ANY.with_tp_dst(80),
                    vec![Instruction::output(PortNo(1))],
                ))),
            ),
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    FlowMatch::ANY.with_tp_dst(443),
                    vec![Instruction::output(PortNo(2))],
                ))),
            ),
        ];
        let rep = validate_rules(&msgs);
        assert!(rep.is_ok());
        assert!(rep.warnings.is_empty());
    }

    #[test]
    fn same_rule_on_different_switches_is_fine() {
        let m = FlowMatch::ANY.with_tp_dst(80);
        let msgs = vec![
            (
                NodeId(1),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    m,
                    vec![Instruction::output(PortNo(1))],
                ))),
            ),
            (
                NodeId(2),
                CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    m,
                    vec![Instruction::output(PortNo(2))],
                ))),
            ),
        ];
        assert!(validate_rules(&msgs).is_ok());
    }
}
