//! The controller programming interface.
//!
//! The paper's control plane is event-driven: the data plane exports
//! statistics and network state after every event, and the controller
//! reacts by emitting OpenFlow instructions. [`Controller`] is that
//! contract; the `horse` core delivers callbacks with control-channel
//! latency applied and carries [`Outbox`] contents back to the switches.

use horse_openflow::messages::{CtrlMsg, StatsReply, SwitchMsg};
use horse_openflow::table::RemovalReason;
use horse_topology::Topology;
use horse_types::{
    FlowKey, NodeId, PortNo, SimDuration, SimTime, SnapError, SnapReader, SnapWriter,
};

/// Messages and timer requests a controller callback produced.
#[derive(Debug, Default)]
pub struct Outbox {
    /// OpenFlow messages to deliver, in order.
    pub msgs: Vec<(NodeId, CtrlMsg)>,
    /// Timer requests: `(delay, token)` — the core fires
    /// [`Controller::on_timer`] with `token` after `delay`.
    pub timers: Vec<(SimDuration, u64)>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a message for `switch`.
    pub fn send(&mut self, switch: NodeId, msg: CtrlMsg) {
        self.msgs.push((switch, msg));
    }

    /// Requests a timer callback after `delay` carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }

    /// True when nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty() && self.timers.is_empty()
    }
}

/// Read-only view handed to controller callbacks.
///
/// Real SDN controllers learn the topology via discovery (LLDP); the
/// paper's abstraction skips that protocol and exposes the topology (with
/// current link states) directly — the "network state" export of Fig. 2.
pub struct ControllerCtx<'a> {
    /// The topology, including current link states.
    pub topo: &'a Topology,
    /// Current simulated time.
    pub now: SimTime,
}

/// An SDN controller. All callbacks are optional except flow-in, which is
/// the reactive heart of the control plane.
pub trait Controller {
    /// Human-readable name (used in reports).
    fn name(&self) -> &str;

    /// Called once at simulation start — install proactive rules here.
    fn on_start(&mut self, _ctx: &ControllerCtx<'_>, _out: &mut Outbox) {}

    /// A switch reported a flow with no matching entry (table miss).
    fn on_flow_in(
        &mut self,
        switch: NodeId,
        in_port: PortNo,
        key: &FlowKey,
        ctx: &ControllerCtx<'_>,
        out: &mut Outbox,
    );

    /// A flow entry the controller marked for notification was removed.
    fn on_flow_removed(
        &mut self,
        _switch: NodeId,
        _cookie: u64,
        _reason: RemovalReason,
        _ctx: &ControllerCtx<'_>,
        _out: &mut Outbox,
    ) {
    }

    /// A switch port changed state (link failure/recovery).
    fn on_port_status(
        &mut self,
        _switch: NodeId,
        _port: PortNo,
        _up: bool,
        _ctx: &ControllerCtx<'_>,
        _out: &mut Outbox,
    ) {
    }

    /// A statistics reply arrived (the Monitor block's polling loop).
    fn on_stats(
        &mut self,
        _switch: NodeId,
        _reply: &StatsReply,
        _ctx: &ControllerCtx<'_>,
        _out: &mut Outbox,
    ) {
    }

    /// A previously requested timer fired.
    fn on_timer(&mut self, _token: u64, _ctx: &ControllerCtx<'_>, _out: &mut Outbox) {}

    /// A crashed switch rejoined with empty tables. Reinstall whatever
    /// proactive state the switch needs — a rejoining switch remembers
    /// nothing. (Port-status callbacks for its restored cables arrive
    /// separately; this hook is for the table/group/meter contents.)
    fn on_switch_up(&mut self, _switch: NodeId, _ctx: &ControllerCtx<'_>, _out: &mut Outbox) {}

    /// Serializes the controller's mutable state for a checkpoint.
    ///
    /// Stateless controllers need not override this; stateful ones must
    /// write every field that influences future callbacks so that a
    /// resumed run continues bit-identically. The default writes nothing.
    fn snapshot_state(&self, _w: &mut SnapWriter) {}

    /// Restores state written by [`Controller::snapshot_state`] into a
    /// freshly constructed controller of the same configuration.
    fn restore_state(&mut self, _r: &mut SnapReader) -> Result<(), SnapError> {
        Ok(())
    }

    /// Convenience dispatcher used by the core simulator.
    fn dispatch(&mut self, msg: &SwitchMsg, ctx: &ControllerCtx<'_>, out: &mut Outbox) {
        match msg {
            SwitchMsg::FlowIn {
                switch,
                in_port,
                key,
            } => self.on_flow_in(*switch, *in_port, key, ctx, out),
            SwitchMsg::FlowRemoved {
                switch,
                cookie,
                reason,
                ..
            } => self.on_flow_removed(*switch, *cookie, *reason, ctx, out),
            SwitchMsg::PortStatus { switch, port, up } => {
                self.on_port_status(*switch, *port, *up, ctx, out)
            }
            SwitchMsg::StatsReply { switch, reply } => self.on_stats(*switch, reply, ctx, out),
            SwitchMsg::BarrierReply { .. } => {}
        }
    }
}

/// A controller that drops every flow-in (useful as a null baseline and in
/// tests: with it, only proactively installed rules carry traffic).
#[derive(Debug, Default, Clone)]
pub struct NullController;

impl Controller for NullController {
    fn name(&self) -> &str {
        "null"
    }

    fn on_flow_in(
        &mut self,
        _switch: NodeId,
        _in_port: PortNo,
        _key: &FlowKey,
        _ctx: &ControllerCtx<'_>,
        _out: &mut Outbox,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_types::MacAddr;

    #[test]
    fn outbox_collects() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(NodeId(1), CtrlMsg::Barrier);
        out.set_timer(SimDuration::from_secs(1), 42);
        assert_eq!(out.msgs.len(), 1);
        assert_eq!(out.timers, vec![(SimDuration::from_secs(1), 42)]);
        assert!(!out.is_empty());
    }

    #[test]
    fn null_controller_ignores_everything() {
        let topo = Topology::new();
        let ctx = ControllerCtx {
            topo: &topo,
            now: SimTime::ZERO,
        };
        let mut c = NullController;
        let mut out = Outbox::new();
        let key = FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            1,
            80,
        );
        c.dispatch(
            &SwitchMsg::FlowIn {
                switch: NodeId(0),
                in_port: PortNo(1),
                key,
            },
            &ctx,
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(c.name(), "null");
    }
}
