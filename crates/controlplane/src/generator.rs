//! The Policy Generator — the paper's "lightweight and modular controller
//! that translates high level policies into OpenFlow control messages".
//!
//! [`PolicyGenerator`] validates a [`PolicySpec`] against the topology,
//! instantiates one [`PolicyModule`] per rule, and implements
//! [`Controller`]:
//!
//! * `on_start` installs the pipeline plumbing (table-0 fall-through,
//!   table-1 miss entry) and every module's proactive rules;
//! * `on_flow_in` dispatches to reactive modules (MAC learning);
//! * `on_port_status` rebuilds the path database from the changed topology
//!   and re-installs all modules — failed links disappear from paths, so
//!   replacement rules route around them (the paper's "reaction of the
//!   controller to specific network events");
//! * `on_stats` / `on_timer` feed the adaptive load balancer.

use crate::api::{Controller, ControllerCtx, Outbox};
use crate::modules::{
    AppPeeringModule, BlackholeModule, CompileCtx, LoadBalanceModule, MacForwardingModule,
    MacLearningModule, PolicyModule, RateLimitModule, SourceRoutingModule,
};
use crate::pathdb::PathDb;
use crate::spec::{PolicyRule, PolicySpec};
use crate::validate::{validate_spec, ValidationReport};
use crate::{cookies, priorities};
use horse_openflow::actions::{Action, Instruction};
use horse_openflow::flow_match::FlowMatch;
use horse_openflow::messages::{CtrlMsg, FlowMod, FlowModCommand};
use horse_openflow::table::FlowEntry;
use horse_openflow::MeterId;
use horse_topology::Topology;
use horse_types::{FlowKey, NodeId, PortNo, Rate, Snap, TableId};

/// See module docs.
pub struct PolicyGenerator {
    spec: PolicySpec,
    modules: Vec<Box<dyn PolicyModule>>,
    paths: PathDb,
    /// The validation outcome (always `is_ok()` for a constructed
    /// generator; kept for its warnings).
    pub report: ValidationReport,
    /// Whether a reactive module is present (drives the table-1 miss rule).
    reactive: bool,
    /// Flow-ins received.
    pub flow_ins: u64,
    /// Flow-ins no module handled.
    pub unhandled_flow_ins: u64,
    /// Messages emitted (all callbacks).
    pub msgs_emitted: u64,
}

impl PolicyGenerator {
    /// Validates the spec and builds the module stack. Returns the
    /// validation report on hard errors.
    pub fn new(spec: PolicySpec, topo: &Topology) -> Result<Self, ValidationReport> {
        let report = validate_spec(&spec, topo);
        if !report.is_ok() {
            return Err(report);
        }
        let paths = PathDb::build(topo);
        let mut modules: Vec<Box<dyn PolicyModule>> = Vec::new();
        let mut meter_seq = 0u32;
        let mut reactive = false;
        let host = |name: &str| topo.node_by_name(name).expect("validated");
        let mac = |name: &str| {
            topo.node(host(name))
                .and_then(|n| n.mac())
                .expect("validated host has MAC")
        };
        for (rule_idx, rule) in spec.policies.iter().enumerate() {
            let instance = rule_idx as u64 + 1;
            match rule {
                PolicyRule::MacForwarding => modules.push(Box::new(MacForwardingModule)),
                PolicyRule::MacLearning => {
                    reactive = true;
                    modules.push(Box::new(MacLearningModule::default()));
                }
                PolicyRule::LoadBalancing { mode } => {
                    modules.push(Box::new(LoadBalanceModule::new(*mode)))
                }
                PolicyRule::AppPeering {
                    src,
                    dst,
                    app,
                    path_rank,
                } => modules.push(Box::new(AppPeeringModule {
                    src: host(src),
                    dst: host(dst),
                    src_mac: mac(src),
                    dst_mac: mac(dst),
                    app: *app,
                    path_rank: *path_rank,
                    index: instance,
                })),
                PolicyRule::Blackhole { victim } => modules.push(Box::new(BlackholeModule {
                    victim: host(victim),
                    victim_mac: mac(victim),
                })),
                PolicyRule::SourceRouting { src, dst, via } => {
                    let waypoints: Vec<NodeId> = via
                        .iter()
                        .map(|w| topo.node_by_name(w).expect("validated waypoint"))
                        .collect();
                    modules.push(Box::new(SourceRoutingModule {
                        src: host(src),
                        dst: host(dst),
                        src_mac: mac(src),
                        dst_mac: mac(dst),
                        via: waypoints,
                        index: instance,
                    }))
                }
                PolicyRule::RateLimit {
                    src,
                    dst,
                    rate_mbps,
                } => {
                    meter_seq += 1;
                    modules.push(Box::new(RateLimitModule {
                        src: host(src),
                        dst: host(dst),
                        src_mac: mac(src),
                        dst_mac: mac(dst),
                        rate: Rate::mbps(*rate_mbps),
                        meter: MeterId(meter_seq),
                    }))
                }
            }
        }
        Ok(PolicyGenerator {
            spec,
            modules,
            paths,
            report,
            reactive,
            flow_ins: 0,
            unhandled_flow_ins: 0,
            msgs_emitted: 0,
        })
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    /// Compiles all proactive rules (plumbing + modules) without running a
    /// simulation — used by tests and by [`validate_rules`] consumers.
    ///
    /// [`validate_rules`]: crate::validate::validate_rules
    pub fn compile(&mut self, topo: &Topology) -> Outbox {
        let mut out = Outbox::new();
        let ctx = ControllerCtx {
            topo,
            now: horse_types::SimTime::ZERO,
        };
        self.on_start(&ctx, &mut out);
        out
    }

    fn install_plumbing(&self, topo: &Topology, out: &mut Outbox) {
        for sw in topo.switches() {
            // table 0 fall-through: every flow continues into table 1
            out.send(
                sw,
                CtrlMsg::FlowMod(FlowMod {
                    table: TableId(0),
                    command: FlowModCommand::Add,
                    entry: FlowEntry::new(
                        priorities::FALLTHROUGH,
                        FlowMatch::ANY,
                        vec![Instruction::GotoTable(TableId(1))],
                    )
                    .with_cookie(cookies::PLUMBING),
                }),
            );
            // table 1 miss: reactive setups punt to the controller
            if self.reactive {
                out.send(
                    sw,
                    CtrlMsg::FlowMod(FlowMod {
                        table: TableId(1),
                        command: FlowModCommand::Add,
                        entry: FlowEntry::new(
                            0,
                            FlowMatch::ANY,
                            vec![Instruction::ApplyActions(vec![Action::Output(
                                PortNo::CONTROLLER,
                            )])],
                        )
                        .with_cookie(cookies::PLUMBING),
                    }),
                );
            }
        }
    }

    fn reinstall(&mut self, ctx: &ControllerCtx<'_>, out: &mut Outbox) {
        self.install_plumbing(ctx.topo, out);
        let cctx = CompileCtx {
            topo: ctx.topo,
            paths: &self.paths,
            now: ctx.now,
        };
        for m in self.modules.iter_mut() {
            m.install(&cctx, out);
        }
    }
}

impl Controller for PolicyGenerator {
    fn name(&self) -> &str {
        "policy_generator"
    }

    fn on_start(&mut self, ctx: &ControllerCtx<'_>, out: &mut Outbox) {
        self.paths = PathDb::build(ctx.topo);
        self.reinstall(ctx, out);
        self.msgs_emitted += out.msgs.len() as u64;
    }

    fn on_flow_in(
        &mut self,
        switch: NodeId,
        in_port: PortNo,
        key: &FlowKey,
        ctx: &ControllerCtx<'_>,
        out: &mut Outbox,
    ) {
        self.flow_ins += 1;
        let before = out.msgs.len();
        let cctx = CompileCtx {
            topo: ctx.topo,
            paths: &self.paths,
            now: ctx.now,
        };
        let mut handled = false;
        for m in self.modules.iter_mut() {
            if m.on_flow_in(switch, in_port, key, &cctx, out) {
                handled = true;
                break;
            }
        }
        if !handled {
            self.unhandled_flow_ins += 1;
        }
        self.msgs_emitted += (out.msgs.len() - before) as u64;
    }

    fn on_port_status(
        &mut self,
        switch: NodeId,
        port: PortNo,
        up: bool,
        ctx: &ControllerCtx<'_>,
        out: &mut Outbox,
    ) {
        // Topology in ctx already reflects the change; recompute paths and
        // re-install so forwarding routes around the failure.
        self.paths = PathDb::build(ctx.topo);
        let before = out.msgs.len();
        {
            let cctx = CompileCtx {
                topo: ctx.topo,
                paths: &self.paths,
                now: ctx.now,
            };
            for m in self.modules.iter_mut() {
                m.on_port_status(switch, port, up, &cctx, out);
            }
        }
        self.reinstall(ctx, out);
        self.msgs_emitted += (out.msgs.len() - before) as u64;
    }

    fn on_stats(
        &mut self,
        switch: NodeId,
        reply: &horse_openflow::messages::StatsReply,
        ctx: &ControllerCtx<'_>,
        out: &mut Outbox,
    ) {
        let before = out.msgs.len();
        let cctx = CompileCtx {
            topo: ctx.topo,
            paths: &self.paths,
            now: ctx.now,
        };
        for m in self.modules.iter_mut() {
            m.on_stats(switch, reply, &cctx, out);
        }
        self.msgs_emitted += (out.msgs.len() - before) as u64;
    }

    fn on_switch_up(&mut self, _switch: NodeId, ctx: &ControllerCtx<'_>, out: &mut Outbox) {
        // The rejoined switch is empty; rules are idempotent overwrites,
        // so rebuild paths against the restored topology and reinstall
        // everywhere (surviving switches just re-apply identical state).
        self.paths = PathDb::build(ctx.topo);
        let before = out.msgs.len();
        self.reinstall(ctx, out);
        self.msgs_emitted += (out.msgs.len() - before) as u64;
    }

    fn on_timer(&mut self, token: u64, ctx: &ControllerCtx<'_>, out: &mut Outbox) {
        let before = out.msgs.len();
        let cctx = CompileCtx {
            topo: ctx.topo,
            paths: &self.paths,
            now: ctx.now,
        };
        for m in self.modules.iter_mut() {
            if m.on_timer(token, &cctx, out) {
                break;
            }
        }
        self.msgs_emitted += (out.msgs.len() - before) as u64;
    }

    fn snapshot_state(&self, w: &mut horse_types::SnapWriter) {
        // The path DB is serialized, not rebuilt: it may legitimately be
        // stale relative to the topology while a port-status callback is
        // still in the control-channel latency window.
        self.paths.snap(w);
        self.flow_ins.snap(w);
        self.unhandled_flow_ins.snap(w);
        self.msgs_emitted.snap(w);
        w.len_prefix(self.modules.len());
        for m in &self.modules {
            m.snapshot_state(w);
        }
    }

    fn restore_state(
        &mut self,
        r: &mut horse_types::SnapReader,
    ) -> Result<(), horse_types::SnapError> {
        self.paths = horse_types::Snap::unsnap(r)?;
        self.flow_ins = horse_types::Snap::unsnap(r)?;
        self.unhandled_flow_ins = horse_types::Snap::unsnap(r)?;
        self.msgs_emitted = horse_types::Snap::unsnap(r)?;
        let n = r.len_prefix()?;
        if n != self.modules.len() {
            return Err(horse_types::SnapError::new(
                format!(
                    "snapshot has {n} policy modules, generator has {}",
                    self.modules.len()
                ),
                r.position(),
            ));
        }
        for m in self.modules.iter_mut() {
            m.restore_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LbMode;
    use crate::validate::validate_rules;
    use horse_topology::builders;

    fn fig1_fabric() -> horse_topology::builders::FabricHandles {
        builders::figure1_fabric()
    }

    #[test]
    fn rejects_invalid_spec() {
        let f = fig1_fabric();
        let bad = PolicySpec::new().with(PolicyRule::Blackhole {
            victim: "ghost".into(),
        });
        let err = PolicyGenerator::new(bad, &f.topology)
            .err()
            .expect("rejected");
        assert!(!err.is_ok());
    }

    #[test]
    fn figure1_compiles_conflict_free() {
        let f = fig1_fabric();
        let mut gen = PolicyGenerator::new(PolicySpec::figure1(), &f.topology).expect("valid spec");
        let out = gen.compile(&f.topology);
        assert!(!out.msgs.is_empty());
        let rep = validate_rules(&out.msgs);
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn reactive_spec_installs_table1_miss() {
        let f = fig1_fabric();
        let mut gen =
            PolicyGenerator::new(PolicySpec::new().with(PolicyRule::MacLearning), &f.topology)
                .unwrap();
        let out = gen.compile(&f.topology);
        // every switch gets fall-through + controller-miss
        let switches = f.topology.switches().count();
        let miss_rules = out
            .msgs
            .iter()
            .filter(|(_, m)| {
                matches!(m, CtrlMsg::FlowMod(fm) if fm.table == TableId(1) && fm.entry.priority == 0)
            })
            .count();
        assert_eq!(miss_rules, switches);
    }

    #[test]
    fn proactive_spec_has_no_controller_miss() {
        let f = fig1_fabric();
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::MacForwarding),
            &f.topology,
        )
        .unwrap();
        let out = gen.compile(&f.topology);
        let miss_rules = out
            .msgs
            .iter()
            .filter(|(_, m)| {
                matches!(m, CtrlMsg::FlowMod(fm) if fm.table == TableId(1) && fm.entry.priority == 0)
            })
            .count();
        assert_eq!(miss_rules, 0);
    }

    #[test]
    fn adaptive_lb_arms_timer_through_generator() {
        let f = fig1_fabric();
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::LoadBalancing {
                mode: LbMode::Adaptive,
            }),
            &f.topology,
        )
        .unwrap();
        let out = gen.compile(&f.topology);
        assert_eq!(out.timers.len(), 1);
        // firing the timer emits stats requests
        let ctx = ControllerCtx {
            topo: &f.topology,
            now: horse_types::SimTime::from_secs(5),
        };
        let mut out2 = Outbox::new();
        gen.on_timer(out.timers[0].1, &ctx, &mut out2);
        assert!(out2
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, CtrlMsg::StatsRequest(_))));
    }

    #[test]
    fn port_status_triggers_reinstall() {
        let f = fig1_fabric();
        let mut topo = f.topology.clone();
        let mut gen =
            PolicyGenerator::new(PolicySpec::new().with(PolicyRule::MacForwarding), &topo).unwrap();
        let _ = gen.compile(&topo);
        // fail an edge-core cable, then notify
        let e1 = topo.node_by_name("e1").unwrap();
        let cable = topo.out_links(e1).next().map(|(l, _)| l).unwrap();
        let port = topo.link(cable).unwrap().src_port;
        topo.set_cable_state(cable, horse_topology::LinkState::Down)
            .unwrap();
        let ctx = ControllerCtx {
            topo: &topo,
            now: horse_types::SimTime::from_secs(1),
        };
        let mut out = Outbox::new();
        gen.on_port_status(e1, port, false, &ctx, &mut out);
        assert!(
            !out.msgs.is_empty(),
            "reinstall must emit replacement rules"
        );
        // none of the re-installed rules on e1 may output on the dead port
        for (sw, msg) in &out.msgs {
            if *sw == e1 {
                if let CtrlMsg::FlowMod(fm) = msg {
                    for ins in &fm.entry.instructions {
                        if let Instruction::ApplyActions(actions) = ins {
                            for a in actions {
                                if let Action::Output(p) = a {
                                    assert_ne!(*p, port, "rule still uses dead port");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unhandled_flow_ins_counted() {
        let f = fig1_fabric();
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::MacForwarding),
            &f.topology,
        )
        .unwrap();
        let ctx = ControllerCtx {
            topo: &f.topology,
            now: horse_types::SimTime::ZERO,
        };
        let mut out = Outbox::new();
        let key = horse_types::FlowKey::tcp(
            horse_types::MacAddr::local_from_id(1),
            horse_types::MacAddr::local_from_id(2),
            "10.0.0.1".parse().unwrap(),
            "10.0.1.1".parse().unwrap(),
            1,
            80,
        );
        gen.on_flow_in(f.edges[0], PortNo(1), &key, &ctx, &mut out);
        assert_eq!(gen.flow_ins, 1);
        assert_eq!(gen.unhandled_flow_ins, 1, "no reactive module present");
    }
}
