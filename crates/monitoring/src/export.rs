//! Export sinks: CSV and JSON.

use crate::series::TimeSeries;
use std::fmt::Write as _;

/// Renders a set of named series as CSV: `time_s,<name1>,<name2>,…`.
/// Series are joined on sample index (they are expected to share epochs);
/// shorter series pad with empty cells.
pub fn to_csv(series: &[(&str, &TimeSeries)]) -> String {
    let mut out = String::new();
    out.push_str("time_s");
    for (name, _) in series {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    let rows = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = series
            .iter()
            .find_map(|(_, s)| s.points().get(i).map(|&(t, _)| t));
        let Some(t) = t else { break };
        let _ = write!(out, "{:.6}", t.as_secs_f64());
        for (_, s) in series {
            match s.points().get(i) {
                Some(&(_, v)) => {
                    let _ = write!(out, ",{v:.6}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a generic table as CSV. Cells containing commas, quotes or
/// newlines are quoted per RFC 4180; everything else passes through
/// verbatim so numeric output stays byte-stable.
pub fn table_to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &mut dyn Iterator<Item = &str>| {
        let mut first = true;
        for cell in cells {
            if !first {
                out.push(',');
            }
            first = false;
            if cell.contains([',', '"', '\n', '\r']) {
                out.push('"');
                out.push_str(&cell.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(cell);
            }
        }
        out.push('\n');
    };
    write_row(&mut out, &mut header.iter().copied());
    for row in rows {
        write_row(&mut out, &mut row.iter().map(String::as_str));
    }
    out
}

/// Renders one series as a JSON array of `{"t": secs, "v": value}`.
pub fn to_json(series: &TimeSeries) -> String {
    let items: Vec<serde_json::Value> = series
        .points()
        .iter()
        .map(|&(t, v)| serde_json::json!({"t": t.as_secs_f64(), "v": v}))
        .collect();
    serde_json::to_string(&items).expect("series serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_types::SimTime;

    fn series(vals: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for (i, v) in vals.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), *v);
        }
        s
    }

    #[test]
    fn csv_layout() {
        let a = series(&[1.0, 2.0]);
        let b = series(&[3.0]);
        let csv = to_csv(&[("util", &a), ("rate", &b)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,util,rate");
        assert!(lines[1].starts_with("0.000000,1.000000,3.000000"));
        assert!(lines[2].ends_with(','), "short series pads");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn empty_csv_has_header_only() {
        let csv = to_csv(&[]);
        assert_eq!(csv, "time_s\n");
    }

    #[test]
    fn json_roundtrips() {
        let s = series(&[0.25]);
        let js = to_json(&s);
        let parsed: Vec<serde_json::Value> = serde_json::from_str(&js).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0]["v"], 0.25);
    }
}
