//! Epoch-driven statistics collection.
//!
//! The core simulator schedules a stats-export event every epoch; the
//! collector snapshots link utilizations, aggregate throughput and flow
//! counts, maintains per-link series, and raises threshold alarms —
//! "these measurements enable the creation of policies based on the
//! current status of the network" (paper, §2).

use crate::series::TimeSeries;
use horse_types::{LinkId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One epoch's aggregate snapshot.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch end time.
    pub time: SimTime,
    /// Sum of link rates (bps) over all directed links — fabric load.
    pub aggregate_rate_bps: f64,
    /// Highest single-link utilization observed this epoch.
    pub max_utilization: f64,
    /// Mean utilization over links carrying traffic.
    pub mean_busy_utilization: f64,
    /// Active flows at snapshot time.
    pub active_flows: usize,
    /// Flows completed since simulation start.
    pub completed_flows: usize,
}

/// A raised congestion alarm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThresholdAlarm {
    /// The link whose utilization crossed the threshold.
    pub link: LinkId,
    /// When.
    pub time: SimTime,
    /// Observed utilization.
    pub utilization: f64,
}

horse_types::impl_snap_struct!(EpochReport {
    time,
    aggregate_rate_bps,
    max_utilization,
    mean_busy_utilization,
    active_flows,
    completed_flows,
});

horse_types::impl_snap_struct!(ThresholdAlarm {
    link,
    time,
    utilization,
});

/// Collects link and aggregate statistics across epochs.
#[derive(Clone, Debug)]
pub struct StatsCollector {
    /// Utilization series per monitored link.
    link_series: HashMap<LinkId, TimeSeries>,
    /// Aggregate fabric rate (bps) over time.
    pub aggregate: TimeSeries,
    /// Active flow count over time.
    pub active_flows: TimeSeries,
    /// Epoch reports in order.
    pub epochs: Vec<EpochReport>,
    /// Alarm threshold (utilization in `[0, 1]`); `None` disables alarms.
    pub alarm_threshold: Option<f64>,
    /// Alarms raised.
    pub alarms: Vec<ThresholdAlarm>,
    /// Links currently above threshold. Alarms are edge-triggered: a link
    /// fires once when it crosses the threshold upward and re-arms only
    /// after an epoch back below it, so a sustained hot link produces one
    /// alarm per excursion instead of one per epoch.
    latched: HashSet<LinkId>,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsCollector {
    /// A collector with alarms disabled.
    pub fn new() -> Self {
        StatsCollector {
            link_series: HashMap::new(),
            aggregate: TimeSeries::new(),
            active_flows: TimeSeries::new(),
            epochs: Vec::new(),
            alarm_threshold: None,
            alarms: Vec::new(),
            latched: HashSet::new(),
        }
    }

    /// Enables congestion alarms above `threshold` utilization.
    pub fn with_alarm_threshold(mut self, threshold: f64) -> Self {
        self.alarm_threshold = Some(threshold);
        self
    }

    /// Records one epoch snapshot. `link_view` yields
    /// `(link, utilization, rate_bps)` for every directed link.
    pub fn record_epoch<I>(
        &mut self,
        time: SimTime,
        link_view: I,
        active_flows: usize,
        completed_flows: usize,
    ) -> EpochReport
    where
        I: IntoIterator<Item = (LinkId, f64, f64)>,
    {
        let mut aggregate = 0.0;
        let mut max_util: f64 = 0.0;
        let mut busy_sum = 0.0;
        let mut busy_count = 0usize;
        for (link, util, rate) in link_view {
            aggregate += rate;
            max_util = max_util.max(util);
            if rate > 0.0 {
                busy_sum += util;
                busy_count += 1;
            }
            self.link_series.entry(link).or_default().push(time, util);
            if let Some(th) = self.alarm_threshold {
                if util >= th {
                    if self.latched.insert(link) {
                        self.alarms.push(ThresholdAlarm {
                            link,
                            time,
                            utilization: util,
                        });
                    }
                } else {
                    self.latched.remove(&link);
                }
            }
        }
        let report = EpochReport {
            time,
            aggregate_rate_bps: aggregate,
            max_utilization: max_util,
            mean_busy_utilization: if busy_count > 0 {
                busy_sum / busy_count as f64
            } else {
                0.0
            },
            active_flows,
            completed_flows,
        };
        self.aggregate.push(time, aggregate);
        self.active_flows.push(time, active_flows as f64);
        self.epochs.push(report);
        report
    }

    /// Serializes the collector's accumulated state for a checkpoint.
    /// `alarm_threshold` is configuration and travels with the scenario,
    /// not the snapshot.
    pub fn snapshot_state(&self, w: &mut horse_types::SnapWriter) {
        use horse_types::Snap;
        self.link_series.snap(w);
        self.aggregate.snap(w);
        self.active_flows.snap(w);
        self.epochs.snap(w);
        self.alarms.snap(w);
        self.latched.snap(w);
    }

    /// Restores state written by [`StatsCollector::snapshot_state`].
    pub fn restore_state(
        &mut self,
        r: &mut horse_types::SnapReader,
    ) -> Result<(), horse_types::SnapError> {
        use horse_types::Snap;
        self.link_series = Snap::unsnap(r)?;
        self.aggregate = Snap::unsnap(r)?;
        self.active_flows = Snap::unsnap(r)?;
        self.epochs = Snap::unsnap(r)?;
        self.alarms = Snap::unsnap(r)?;
        self.latched = Snap::unsnap(r)?;
        Ok(())
    }

    /// The utilization series of one link (if ever sampled).
    pub fn link_series(&self, link: LinkId) -> Option<&TimeSeries> {
        self.link_series.get(&link)
    }

    /// Links sampled so far, sorted.
    pub fn monitored_links(&self) -> Vec<LinkId> {
        let mut v: Vec<LinkId> = self.link_series.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(u1: f64, u2: f64) -> Vec<(LinkId, f64, f64)> {
        vec![(LinkId(0), u1, u1 * 1e9), (LinkId(1), u2, u2 * 1e9)]
    }

    #[test]
    fn epoch_aggregates() {
        let mut c = StatsCollector::new();
        let r = c.record_epoch(SimTime::from_secs(1), view(0.5, 0.0), 3, 7);
        assert!((r.aggregate_rate_bps - 0.5e9).abs() < 1.0);
        assert_eq!(r.max_utilization, 0.5);
        assert_eq!(r.mean_busy_utilization, 0.5, "idle links excluded");
        assert_eq!(r.active_flows, 3);
        assert_eq!(r.completed_flows, 7);
        assert_eq!(c.epochs.len(), 1);
    }

    #[test]
    fn series_accumulate_per_link() {
        let mut c = StatsCollector::new();
        c.record_epoch(SimTime::from_secs(1), view(0.1, 0.2), 0, 0);
        c.record_epoch(SimTime::from_secs(2), view(0.3, 0.4), 0, 0);
        let s0 = c.link_series(LinkId(0)).unwrap();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0.last(), Some(0.3));
        assert_eq!(c.monitored_links(), vec![LinkId(0), LinkId(1)]);
    }

    #[test]
    fn alarms_fire_at_threshold() {
        let mut c = StatsCollector::new().with_alarm_threshold(0.9);
        c.record_epoch(SimTime::from_secs(1), view(0.95, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(2), view(0.5, 0.5), 0, 0);
        assert_eq!(c.alarms.len(), 1);
        assert_eq!(c.alarms[0].link, LinkId(0));
        assert_eq!(c.alarms[0].time, SimTime::from_secs(1));
    }

    #[test]
    fn sustained_excursion_fires_once() {
        let mut c = StatsCollector::new().with_alarm_threshold(0.9);
        c.record_epoch(SimTime::from_secs(1), view(0.95, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(2), view(0.97, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(3), view(0.99, 0.5), 0, 0);
        assert_eq!(c.alarms.len(), 1, "latched while continuously hot");
        assert_eq!(c.alarms[0].time, SimTime::from_secs(1));
    }

    #[test]
    fn alarm_rearms_after_dropping_below_threshold() {
        let mut c = StatsCollector::new().with_alarm_threshold(0.9);
        c.record_epoch(SimTime::from_secs(1), view(0.95, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(2), view(0.95, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(3), view(0.5, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(4), view(0.95, 0.5), 0, 0);
        assert_eq!(c.alarms.len(), 2, "one alarm per excursion");
        assert_eq!(c.alarms[0].time, SimTime::from_secs(1));
        assert_eq!(c.alarms[1].time, SimTime::from_secs(4));
        assert!(c.alarms.iter().all(|a| a.link == LinkId(0)));
    }

    #[test]
    fn links_latch_independently() {
        let mut c = StatsCollector::new().with_alarm_threshold(0.9);
        c.record_epoch(SimTime::from_secs(1), view(0.95, 0.95), 0, 0);
        c.record_epoch(SimTime::from_secs(2), view(0.95, 0.5), 0, 0);
        c.record_epoch(SimTime::from_secs(3), view(0.95, 0.95), 0, 0);
        assert_eq!(c.alarms.len(), 3, "link 1 re-fires; link 0 stays latched");
        let link1: Vec<_> = c.alarms.iter().filter(|a| a.link == LinkId(1)).collect();
        assert_eq!(link1.len(), 2);
    }

    #[test]
    fn no_threshold_no_alarms() {
        let mut c = StatsCollector::new();
        c.record_epoch(SimTime::from_secs(1), view(1.0, 1.0), 0, 0);
        assert!(c.alarms.is_empty());
    }
}
