//! # horse-monitoring
//!
//! The Monitor block of Fig. 2. The paper: "the monitoring primitives of
//! the simulator will contemplate typical network measurements such as
//! link bandwidth and SDN-enabled ones (i.e., OpenFlow counters)".
//!
//! * [`series`] — time series with summary statistics (mean, max,
//!   quantiles) used for link-utilization and load traces.
//! * [`collector`] — [`StatsCollector`]: epoch-driven collection of link
//!   utilization samples, aggregate throughput, flow counts; threshold
//!   watchers for congestion alarms.
//! * [`export`] — CSV / JSON sinks for offline analysis (the experiment
//!   harness prints tables from these).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod export;
pub mod series;

pub use collector::{EpochReport, StatsCollector, ThresholdAlarm};
pub use export::{to_csv, to_json};
pub use series::TimeSeries;
