//! Time series with summary statistics.

use horse_types::SimTime;
use serde::{Deserialize, Serialize};

/// An append-only `(time, value)` series.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Samples in append order (time must be non-decreasing).
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample; out-of-order times are clamped to the last time.
    pub fn push(&mut self, t: SimTime, v: f64) {
        let t = match self.points.last() {
            Some(&(last, _)) if t < last => last,
            _ => t,
        };
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Most recent value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Arithmetic mean of the values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum value (`0.0` when empty).
    pub fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }

    /// Minimum value (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on sorted values.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut vals: Vec<f64> = self.points.iter().map(|&(_, v)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in series"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((vals.len() as f64 - 1.0) * q).round() as usize;
        vals[idx]
    }

    /// Time-weighted mean: each value weighted by the interval until the
    /// next sample (the final sample gets zero weight). Falls back to the
    /// plain mean when fewer than two samples exist.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.mean();
        }
        let mut acc = 0.0;
        let mut total = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0.saturating_since(w[0].0).as_secs_f64();
            acc += w[0].1 * dt;
            total += dt;
        }
        if total > 0.0 {
            acc / total
        } else {
            self.mean()
        }
    }
}

/// Summary statistics over a plain slice of values (FCT distributions etc.).
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::default();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let q = |p: f64| sorted[(((n - 1) as f64) * p).round() as usize];
    Summary {
        count: n,
        mean,
        min: sorted[0],
        p50: q(0.5),
        p95: q(0.95),
        p99: q(0.99),
        p999: q(0.999),
        max: sorted[n - 1],
    }
}

/// Summary of a value distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile (the tail the chaos experiments watch).
    #[serde(default)]
    pub p999: f64,
    /// Maximum.
    pub max: f64,
}

// Checkpointing: series are part of the collector's resumable state.
horse_types::impl_snap_struct!(TimeSeries { points });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let mut s = TimeSeries::new();
        for (i, v) in [1.0, 3.0, 2.0].iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some(2.0));
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.min(), 1.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn out_of_order_times_clamped() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(10), 1.0);
        s.push(SimTime::from_secs(5), 2.0);
        assert_eq!(s.points()[1].0, SimTime::from_secs(10));
    }

    #[test]
    fn quantiles() {
        let mut s = TimeSeries::new();
        for i in 0..100 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 99.0);
        assert!((s.quantile(0.5) - 50.0).abs() <= 1.0);
    }

    #[test]
    fn quantile_single_sample_is_that_sample() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 7.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 7.5);
        }
    }

    #[test]
    fn quantile_with_duplicate_values() {
        let mut s = TimeSeries::new();
        for (i, v) in [5.0, 5.0, 5.0, 5.0, 9.0].iter().enumerate() {
            s.push(SimTime::from_secs(i as u64), *v);
        }
        assert_eq!(s.quantile(0.0), 5.0);
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(1.0), 9.0);
    }

    #[test]
    fn quantile_out_of_range_q_is_clamped() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(1), 2.0);
        assert_eq!(s.quantile(-0.5), 1.0);
        assert_eq!(s.quantile(1.5), 2.0);
    }

    #[test]
    fn summarize_edge_shapes() {
        // Single sample: every statistic collapses to it.
        let one = summarize(&[3.0]);
        assert_eq!(one.count, 1);
        assert_eq!(
            (one.min, one.p50, one.p95, one.p99, one.p999, one.max),
            (3.0, 3.0, 3.0, 3.0, 3.0, 3.0)
        );
        // All-duplicate population.
        let dup = summarize(&[2.0; 10]);
        assert_eq!(dup.mean, 2.0);
        assert_eq!(dup.p99, 2.0);
        assert_eq!(dup.p999, 2.0);
        // Empty: everything zero.
        assert_eq!(summarize(&[]), Summary::default());
    }

    #[test]
    fn summarize_tail_quantiles_separate_with_enough_samples() {
        // 1000 samples 0..999: nearest-rank lands p99 on 989 and p999 on
        // 998 — distinct tail values once the population is big enough.
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let sm = summarize(&vals);
        assert_eq!(sm.p99, 989.0);
        assert_eq!(sm.p999, 998.0);
        assert_eq!(sm.max, 999.0);
        // With a tiny population the tail quantiles collapse onto the max
        // rather than extrapolating past it.
        let small = summarize(&[1.0, 2.0, 3.0]);
        assert_eq!(small.p999, 3.0);
        assert!(small.p999 <= small.max);
    }

    #[test]
    fn time_weighted_mean_weights_intervals() {
        let mut s = TimeSeries::new();
        // value 0 for 9 s, then value 10 for 1 s
        s.push(SimTime::from_secs(0), 0.0);
        s.push(SimTime::from_secs(9), 10.0);
        s.push(SimTime::from_secs(10), 0.0);
        assert!((s.time_weighted_mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_slice() {
        let sm = summarize(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(sm.count, 4);
        assert_eq!(sm.min, 1.0);
        assert_eq!(sm.max, 4.0);
        assert!((sm.mean - 2.5).abs() < 1e-12);
        assert_eq!(summarize(&[]).count, 0);
    }
}
