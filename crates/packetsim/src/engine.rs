//! The packet-level engine.
//!
//! The mechanics live in [`PacketPlane`] — a drivable core that owns the
//! per-port queues, flow sources and drop counters but **not** the
//! topology, the OpenFlow switches or the event queue. Every event is
//! pushed through [`PacketPlane::handle`], which borrows the topology and
//! switch pipeline, asks a caller-supplied drain-rate oracle how fast a
//! link may serialize, and emits follow-up events / controller messages /
//! serializer busy-idle transitions into a [`PktOut`] buffer.
//!
//! Two drivers exist:
//!
//! * [`PacketNet`] — the standalone baseline (this file): owns its own
//!   topology, switches and event loop; links drain at full capacity.
//!   This is the reference the accuracy comparisons run against.
//! * the hybrid co-simulation in `horse-core` — shares one event queue,
//!   topology and switch pipeline with the fluid plane; links drain at
//!   `capacity − fluid utilization`, and the busy/idle transitions feed
//!   capacity reservations back into the fluid allocator.

use crate::source::SourceKind;
use horse_controlplane::{Controller, ControllerCtx, Outbox};
use horse_events::EventQueue;
use horse_openflow::messages::{CtrlMsg, SwitchMsg};
use horse_openflow::switch::{OpenFlowSwitch, PipelineResult, Verdict};
use horse_topology::Topology;
use horse_types::id::MeterId;
use horse_types::snap::{snap_via_serde, unsnap_via_serde};
use horse_types::{
    ByteSize, FlowKey, LinkId, NodeId, PortNo, Rate, SimDuration, SimTime, Snap, SnapError,
    SnapReader, SnapWriter,
};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Packet-plane configuration.
#[derive(Clone, Copy, Debug)]
pub struct PacketSimConfig {
    /// Data segment size on the wire (bytes).
    pub data_pkt: u32,
    /// ACK packet size (bytes).
    pub ack_pkt: u32,
    /// Per-port output buffer.
    pub buffer: ByteSize,
    /// One-way control-channel latency.
    pub ctrl_latency: SimDuration,
    /// Minimum retransmission timeout (seconds).
    pub rto_floor: f64,
    /// Maximum packets one burst event may model (GSO-style batching).
    /// `1` disables batching and is bit-identical to the per-packet plane.
    pub burst: u32,
    /// Cache per-flow pipeline decisions so only a burst's head packet
    /// walks the match/group/meter tables (generation-stamped; any
    /// forwarding-state change invalidates).
    pub decision_cache: bool,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            data_pkt: 1500,
            ack_pkt: 64,
            buffer: ByteSize::kib(256),
            ctrl_latency: SimDuration::from_micros(500),
            rto_floor: 0.01,
            burst: 32,
            decision_cache: true,
        }
    }
}

/// A flow to drive through the packet plane.
#[derive(Clone, Debug)]
pub struct PktFlowSpec {
    /// Header fields.
    pub key: FlowKey,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size: ByteSize,
    /// Start time.
    pub start: SimTime,
    /// Source model.
    pub source: SourceKind,
}

/// Completion record.
#[derive(Clone, Debug)]
pub struct PktFlowRecord {
    /// Flow index (into the input spec list).
    pub index: usize,
    /// Header fields.
    pub key: FlowKey,
    /// Bytes delivered in order to the receiver.
    pub bytes_delivered: u64,
    /// Bytes of this flow's packets lost to tail drops, meters, table
    /// misses and dead links.
    pub dropped_bytes: u64,
    /// Start time.
    pub started: SimTime,
    /// Finish time (delivery of the last in-order byte), or horizon.
    pub finished: SimTime,
    /// Whether the byte budget completed before the horizon.
    pub completed: bool,
}

impl PktFlowRecord {
    /// Flow completion time (seconds).
    pub fn fct_secs(&self) -> f64 {
        self.finished.saturating_since(self.started).as_secs_f64()
    }
}

/// Aggregate results of a packet-level run.
#[derive(Debug)]
pub struct PacketResults {
    /// Per-flow records (same order as the input specs).
    pub records: Vec<PktFlowRecord>,
    /// Bytes carried per directed link (indexed by link id).
    pub link_bytes: Vec<f64>,
    /// Queue (and policy/meter) drops per directed link.
    pub drops: u64,
    /// Events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Final simulated time.
    pub sim_time: SimTime,
}

impl PacketResults {
    /// Mean utilization of a link over the run.
    pub fn utilization(&self, link: LinkId, capacity: Rate, duration: SimDuration) -> f64 {
        let secs = duration.as_secs_f64();
        if secs <= 0.0 || capacity.is_zero() {
            return 0.0;
        }
        (self.link_bytes[link.index()] * 8.0 / secs / capacity.as_bps()).clamp(0.0, 1.0)
    }
}

/// A packet-plane event. Drivers schedule these on their event queue and
/// feed them back through [`PacketPlane::handle`].
#[derive(Clone, Debug)]
pub enum PktEvent {
    /// A flow's source starts.
    Start(usize),
    /// CBR pacing tick: try to send the next data packet.
    CbrSend(usize),
    /// Packet arrives at a node after crossing a link.
    Arrive {
        /// Receiving node.
        node: NodeId,
        /// Ingress port at that node.
        in_port: PortNo,
        /// The packet.
        pkt: Pkt,
    },
    /// Serializer on (node, port) finished the packet in flight.
    TxDone {
        /// The transmitting node.
        node: NodeId,
        /// Its egress port.
        port: PortNo,
    },
    /// TCP retransmission timer.
    Rto {
        /// Flow index.
        flow: usize,
        /// Cumulative ACK when the timer was armed (staleness check).
        cum_ack_at_arm: u64,
    },
}

/// A packet in flight (internal representation; drivers only carry these
/// inside [`PktEvent`]s they got from [`PktOut`]).
#[derive(Clone, Debug)]
pub struct Pkt {
    flow: usize,
    key: FlowKey,
    size: u32,
    /// Data segment sequence or, for ACKs, the cumulative ACK value.
    /// A burst (`count > 1`) of data models segments `seq..seq+count`;
    /// a burst of ACKs models the cumulative values
    /// `seq-count+1..=seq` (i.e. `seq` is the final, highest ACK).
    seq: u64,
    is_ack: bool,
    /// Time the segment was (first) transmitted — for RTT sampling.
    sent_at: SimTime,
    /// Packets this event models (GSO-style burst; `1` = a single packet).
    count: u32,
}

/// A cached pipeline decision: valid while the switch's forwarding-state
/// generation still equals `gen` and the arriving key is unchanged.
struct CacheEntry {
    gen: u64,
    key: FlowKey,
    res: PipelineResult,
}

struct PortQueue {
    queue: VecDeque<Pkt>,
    queued_bytes: u64,
    busy: bool,
}

impl PortQueue {
    fn new() -> Self {
        PortQueue {
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
        }
    }
}

struct FlowRt {
    spec: PktFlowSpec,
    source: SourceKind,
    total_segs: u64,
    delivered_segs: u64,
    cbr_sent_segs: u64,
    dropped_bytes: u64,
    finished: Option<SimTime>,
}

/// Everything one [`PacketPlane::handle`] call asks its driver to do:
/// follow-up events to schedule, `FlowIn`s to deliver to the controller
/// (the driver applies the control-channel latency), serializer busy/idle
/// transitions (the hybrid coupling signal) and flows that just finished.
#[derive(Debug, Default)]
pub struct PktOut {
    /// Events to schedule at their absolute times.
    pub events: Vec<(SimTime, PktEvent)>,
    /// Table-miss `FlowIn`s raised while forwarding.
    pub flow_ins: Vec<SwitchMsg>,
    /// `(link, busy)` serializer transitions: `true` when an idle port
    /// started transmitting, `false` when a port drained to idle.
    pub transitions: Vec<(LinkId, bool)>,
    /// Flows whose byte budget completed during this event.
    pub finished: Vec<usize>,
}

impl PktOut {
    /// Clears all buffers (drivers reuse one `PktOut` across events).
    pub fn clear(&mut self) {
        self.events.clear();
        self.flow_ins.clear();
        self.transitions.clear();
        self.finished.clear();
    }
}

// Checkpointing: the whole packet plane — flow runtime state, port
// queues (with their in-flight/queued packets) and drop counters — must
// survive a snapshot, as must the `PktEvent`s riding in the shared
// simulation queue.
horse_types::impl_snap_struct!(Pkt {
    flow,
    key,
    size,
    seq,
    is_ack,
    sent_at,
    count,
});
horse_types::impl_snap_struct!(PktFlowSpec {
    key,
    src,
    dst,
    size,
    start,
    source,
});
horse_types::impl_snap_struct!(FlowRt {
    spec,
    source,
    total_segs,
    delivered_segs,
    cbr_sent_segs,
    dropped_bytes,
    finished,
});
horse_types::impl_snap_struct!(PortQueue {
    queue,
    queued_bytes,
    busy,
});

impl Snap for PktEvent {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            PktEvent::Start(i) => {
                w.u8(0);
                i.snap(w);
            }
            PktEvent::CbrSend(i) => {
                w.u8(1);
                i.snap(w);
            }
            PktEvent::Arrive { node, in_port, pkt } => {
                w.u8(2);
                node.snap(w);
                in_port.snap(w);
                pkt.snap(w);
            }
            PktEvent::TxDone { node, port } => {
                w.u8(3);
                node.snap(w);
                port.snap(w);
            }
            PktEvent::Rto {
                flow,
                cum_ack_at_arm,
            } => {
                w.u8(4);
                flow.snap(w);
                cum_ack_at_arm.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => PktEvent::Start(usize::unsnap(r)?),
            1 => PktEvent::CbrSend(usize::unsnap(r)?),
            2 => PktEvent::Arrive {
                node: NodeId::unsnap(r)?,
                in_port: PortNo::unsnap(r)?,
                pkt: Pkt::unsnap(r)?,
            },
            3 => PktEvent::TxDone {
                node: NodeId::unsnap(r)?,
                port: PortNo::unsnap(r)?,
            },
            4 => PktEvent::Rto {
                flow: usize::unsnap(r)?,
                cum_ack_at_arm: u64::unsnap(r)?,
            },
            t => {
                return Err(SnapError::new(
                    format!("bad PktEvent tag {t}"),
                    r.position(),
                ))
            }
        })
    }
}

/// The per-link serialization-rate oracle: effective drain rate in bps
/// for packets leaving on `link`. The standalone baseline answers with
/// link capacity; the hybrid driver answers with
/// `capacity − fluid utilization` (floored).
pub type DrainFn<'a> = dyn Fn(LinkId) -> f64 + 'a;

/// The drivable packet-mechanics core (see module docs). Owns queues,
/// flow runtime state and drop counters; borrows topology and switches
/// per event.
pub struct PacketPlane {
    flows: Vec<FlowRt>,
    queues: HashMap<(NodeId, PortNo), PortQueue>,
    link_bytes: Vec<f64>,
    drops: u64,
    config: PacketSimConfig,
    /// Cached pipeline decisions keyed by (switch, in-port, flow, dir).
    cache: HashMap<(NodeId, PortNo, usize, bool), CacheEntry>,
    // Burst/cache telemetry.
    bursts_formed: u64,
    burst_len_hist: [u64; 8],
    cache_hits: u64,
    cache_misses: u64,
    cache_invalidations: u64,
    tx_packets: u64,
    // Scratch buffers (always drained within one `handle` call) — keep
    // the steady-state hot path allocation-free.
    scratch_ports: Vec<PortNo>,
    scratch_acks: Vec<u64>,
    scratch_rtx: Vec<u64>,
}

impl PacketPlane {
    /// A fresh plane for a topology with `link_count` directed links.
    pub fn new(link_count: usize, config: PacketSimConfig) -> Self {
        PacketPlane {
            flows: Vec::new(),
            queues: HashMap::new(),
            link_bytes: vec![0.0; link_count],
            drops: 0,
            config,
            cache: HashMap::new(),
            bursts_formed: 0,
            burst_len_hist: [0; 8],
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
            tx_packets: 0,
            scratch_ports: Vec::new(),
            scratch_acks: Vec::new(),
            scratch_rtx: Vec::new(),
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &PacketSimConfig {
        &self.config
    }

    /// Registers a flow; the caller schedules [`PktEvent::Start`] with the
    /// returned index at `spec.start`.
    pub fn add_flow(&mut self, spec: PktFlowSpec) -> usize {
        let total_segs = spec.size.as_bytes().div_ceil(self.config.data_pkt as u64);
        self.flows.push(FlowRt {
            source: spec.source.clone(),
            spec,
            total_segs: total_segs.max(1),
            delivered_segs: 0,
            cbr_sent_segs: 0,
            dropped_bytes: 0,
            finished: None,
        });
        self.flows.len() - 1
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The spec a flow was registered with.
    pub fn spec(&self, index: usize) -> &PktFlowSpec {
        &self.flows[index].spec
    }

    /// Whether a flow's byte budget has completed.
    pub fn is_finished(&self, index: usize) -> bool {
        self.flows[index].finished.is_some()
    }

    /// Bytes delivered in order to a flow's receiver so far.
    pub fn delivered_bytes(&self, index: usize) -> u64 {
        self.flows[index].delivered_segs * self.config.data_pkt as u64
    }

    /// Total queue/policy/meter drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Burst events that modeled more than one packet.
    pub fn bursts_formed(&self) -> u64 {
        self.bursts_formed
    }

    /// Serialized-burst length histogram: bucket `k` counts bursts with
    /// `floor(log2(len)) == k` (lengths ≥ 128 land in the last bucket).
    pub fn burst_len_hist(&self) -> &[u64; 8] {
        &self.burst_len_hist
    }

    /// Pipeline-decision cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Pipeline-decision cache misses (cold or invalidated).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Cache entries found stale (generation or key changed) on lookup.
    pub fn cache_invalidations(&self) -> u64 {
        self.cache_invalidations
    }

    /// Packets (not events) pushed through serializers so far — the
    /// packet-modeling throughput metric burst batching accelerates.
    pub fn tx_packets(&self) -> u64 {
        self.tx_packets
    }

    /// Whether the serializer on `(node, port)` is mid-transmission.
    pub fn is_busy(&self, node: NodeId, port: PortNo) -> bool {
        self.queues
            .get(&(node, port))
            .map(|q| q.busy)
            .unwrap_or(false)
    }

    /// Packets queued behind the one in flight on `(node, port)`.
    pub fn queued_packets(&self, node: NodeId, port: PortNo) -> usize {
        self.queues
            .get(&(node, port))
            .map(|q| q.queue.len())
            .unwrap_or(0)
    }

    /// Bytes of a flow's packets dropped so far.
    pub fn dropped_bytes(&self, index: usize) -> u64 {
        self.flows[index].dropped_bytes
    }

    /// Bytes carried per directed link (indexed by link id).
    pub fn link_bytes(&self) -> &[f64] {
        &self.link_bytes
    }

    /// Counts a lost packet (or whole burst) against the aggregate and
    /// its flow.
    fn drop_pkt(&mut self, pkt: &Pkt) {
        self.drop_pkt_n(pkt, pkt.count);
    }

    /// Counts `n` of a burst's packets as lost.
    fn drop_pkt_n(&mut self, pkt: &Pkt, n: u32) {
        self.drops += n as u64;
        self.flows[pkt.flow].dropped_bytes += pkt.size as u64 * n as u64;
    }

    /// The completion record of one flow (`finished` falls back to
    /// `horizon` for incomplete flows, as in [`PacketResults`]).
    pub fn record(&self, index: usize, horizon: SimTime) -> PktFlowRecord {
        let f = &self.flows[index];
        PktFlowRecord {
            index,
            key: f.spec.key,
            bytes_delivered: f.delivered_segs * self.config.data_pkt as u64,
            dropped_bytes: f.dropped_bytes,
            started: f.spec.start,
            finished: f.finished.unwrap_or(horizon),
            completed: f.finished.is_some(),
        }
    }

    /// All completion records, in registration order.
    pub fn records(&self, horizon: SimTime) -> Vec<PktFlowRecord> {
        (0..self.flows.len())
            .map(|i| self.record(i, horizon))
            .collect()
    }

    /// Serializes the plane's mutable state (flow runtime, port queues,
    /// link byte counters, drops). The configuration is not included —
    /// a restore target is built with the same config.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        self.flows.snap(w);
        self.queues.snap(w);
        self.link_bytes.snap(w);
        self.drops.snap(w);
        // Decision cache, in canonical (sorted-key) order so snapshots of
        // identical planes are byte-identical regardless of hash order.
        let mut keys: Vec<&(NodeId, PortNo, usize, bool)> = self.cache.keys().collect();
        keys.sort();
        w.len_prefix(keys.len());
        for k in keys {
            k.snap(w);
            let e = &self.cache[k];
            e.gen.snap(w);
            e.key.snap(w);
            snap_via_serde(&e.res, w);
        }
        self.bursts_formed.snap(w);
        for b in &self.burst_len_hist {
            b.snap(w);
        }
        self.cache_hits.snap(w);
        self.cache_misses.snap(w);
        self.cache_invalidations.snap(w);
        self.tx_packets.snap(w);
    }

    /// Restores state captured by [`PacketPlane::snapshot_state`] into a
    /// freshly built plane over the same link count and config.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        self.flows = Vec::unsnap(r)?;
        self.queues = HashMap::unsnap(r)?;
        let link_bytes: Vec<f64> = Vec::unsnap(r)?;
        if link_bytes.len() != self.link_bytes.len() {
            return Err(SnapError::new(
                format!(
                    "snapshot has {} links, plane has {}",
                    link_bytes.len(),
                    self.link_bytes.len()
                ),
                r.position(),
            ));
        }
        self.link_bytes = link_bytes;
        self.drops = u64::unsnap(r)?;
        let n = r.len_prefix()?;
        let mut cache = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = <(NodeId, PortNo, usize, bool)>::unsnap(r)?;
            let gen = u64::unsnap(r)?;
            let key = FlowKey::unsnap(r)?;
            let res = unsnap_via_serde::<PipelineResult>(r)?;
            cache.insert(k, CacheEntry { gen, key, res });
        }
        self.cache = cache;
        self.bursts_formed = u64::unsnap(r)?;
        for b in &mut self.burst_len_hist {
            *b = u64::unsnap(r)?;
        }
        self.cache_hits = u64::unsnap(r)?;
        self.cache_misses = u64::unsnap(r)?;
        self.cache_invalidations = u64::unsnap(r)?;
        self.tx_packets = u64::unsnap(r)?;
        Ok(())
    }

    /// Processes one event against the shared topology/switch pipeline.
    /// Everything the driver must act on lands in `out` (which is NOT
    /// cleared here — drivers drain or clear it between calls).
    pub fn handle(
        &mut self,
        now: SimTime,
        ev: PktEvent,
        topo: &Topology,
        switches: &mut HashMap<NodeId, OpenFlowSwitch>,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        match ev {
            PktEvent::Start(i) => match self.flows[i].source {
                SourceKind::Cbr { .. } => {
                    out.events.push((now, PktEvent::CbrSend(i)));
                }
                SourceKind::Tcp(_) => {
                    self.tcp_pump(i, now, topo, drain, out);
                }
            },
            PktEvent::CbrSend(i) => {
                let (done, interval) = {
                    let f = &self.flows[i];
                    let SourceKind::Cbr { rate_bps } = f.source else {
                        return;
                    };
                    let interval = self.config.data_pkt as f64 * 8.0 / rate_bps.max(1.0);
                    (f.cbr_sent_segs >= f.total_segs, interval)
                };
                if done || self.flows[i].finished.is_some() {
                    return;
                }
                // Burst quantum: batch up to `burst` back-to-back ticks
                // into one send, but never more than total/128 so the
                // pacing distortion stays well under the 1% FCT contract
                // (short flows degenerate to per-packet cadence).
                let total = self.flows[i].total_segs;
                let remaining = total - self.flows[i].cbr_sent_segs;
                let quantum = (total / 128).max(1);
                let n = remaining.min(self.config.burst.max(1) as u64).min(quantum) as u32;
                let seq = self.flows[i].cbr_sent_segs;
                self.flows[i].cbr_sent_segs += n as u64;
                let pkt = Pkt {
                    flow: i,
                    key: self.flows[i].spec.key,
                    size: self.config.data_pkt,
                    seq,
                    is_ack: false,
                    sent_at: now,
                    count: n,
                };
                let src = self.flows[i].spec.src;
                self.host_emit(src, pkt, now, topo, drain, out);
                out.events.push((
                    now + SimDuration::from_secs_f64(interval * n as f64),
                    PktEvent::CbrSend(i),
                ));
            }
            PktEvent::Arrive { node, in_port, pkt } => {
                let Some(nd) = topo.node(node) else {
                    return;
                };
                if nd.kind.is_host() {
                    self.host_receive(node, pkt, now, topo, drain, out);
                } else {
                    self.switch_forward(node, in_port, pkt, now, topo, switches, drain, out);
                }
            }
            PktEvent::TxDone { node, port } => {
                // current packet leaves the serializer onto the wire
                if let Some(pq) = self.queues.get_mut(&(node, port)) {
                    pq.busy = false;
                }
                self.start_tx_if_idle(node, port, now, topo, drain, out);
                // still idle after the restart attempt ⇒ the port drained
                if !self
                    .queues
                    .get(&(node, port))
                    .map(|q| q.busy)
                    .unwrap_or(false)
                {
                    if let Some(link) = topo.link_from(node, port) {
                        out.transitions.push((link, false));
                    }
                }
            }
            PktEvent::Rto {
                flow,
                cum_ack_at_arm,
            } => {
                let rto_floor = self.config.rto_floor;
                let mut rearm: Option<f64> = None;
                let mut fire = false;
                {
                    let f = &mut self.flows[flow];
                    if f.finished.is_some() {
                        return;
                    }
                    let SourceKind::Tcp(ref mut t) = f.source else {
                        return;
                    };
                    if t.cum_ack >= f.total_segs {
                        return; // everything acked
                    }
                    if t.cum_ack != cum_ack_at_arm {
                        // Progress since arming: the timer is stale, but the
                        // connection still has unacked data — keep the timer
                        // chain alive or a later stall would deadlock.
                        rearm = Some(t.rto(rto_floor));
                    } else {
                        t.on_timeout();
                        fire = true;
                    }
                }
                if let Some(rto) = rearm {
                    let arm = {
                        let SourceKind::Tcp(ref t) = self.flows[flow].source else {
                            unreachable!()
                        };
                        t.cum_ack
                    };
                    out.events.push((
                        now + SimDuration::from_secs_f64(rto),
                        PktEvent::Rto {
                            flow,
                            cum_ack_at_arm: arm,
                        },
                    ));
                }
                if fire {
                    self.tcp_pump(flow, now, topo, drain, out);
                }
            }
        }
    }

    /// TCP sender: transmit fresh segments while the window allows; arm
    /// the RTO.
    fn tcp_pump(
        &mut self,
        i: usize,
        now: SimTime,
        topo: &Topology,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        let rto_floor = self.config.rto_floor;
        let (src, key) = (self.flows[i].spec.src, self.flows[i].spec.key);
        // The window opens on a contiguous run of fresh sequences —
        // a (start, len) pair, no per-packet allocation.
        let (start, mut run) = {
            let total = self.flows[i].total_segs;
            let SourceKind::Tcp(ref mut t) = self.flows[i].source else {
                return;
            };
            let start = t.next_seq;
            while t.can_send() && t.next_seq < total {
                t.next_seq += 1;
                t.in_flight += 1;
            }
            let run = t.next_seq - start;
            if run > 0 {
                let rto = t.rto(rto_floor);
                let arm = t.cum_ack;
                out.events.push((
                    now + SimDuration::from_secs_f64(rto),
                    PktEvent::Rto {
                        flow: i,
                        cum_ack_at_arm: arm,
                    },
                ));
            }
            (start, run)
        };
        let cap = self.config.burst.max(1) as u64;
        let mut seq = start;
        while run > 0 {
            let n = run.min(cap) as u32;
            let pkt = Pkt {
                flow: i,
                key,
                size: self.config.data_pkt,
                seq,
                is_ack: false,
                sent_at: now,
                count: n,
            };
            self.host_emit(src, pkt, now, topo, drain, out);
            seq += n as u64;
            run -= n as u64;
        }
    }

    /// Host pushes a packet onto its access link.
    fn host_emit(
        &mut self,
        host: NodeId,
        pkt: Pkt,
        now: SimTime,
        topo: &Topology,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        let Some(port) = topo.ports(host).next() else {
            return;
        };
        self.enqueue(host, port, pkt, now, topo, drain, out);
    }

    /// Host receives a packet: data → receiver/ACK, ACK → sender.
    fn host_receive(
        &mut self,
        host: NodeId,
        pkt: Pkt,
        now: SimTime,
        topo: &Topology,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        let i = pkt.flow;
        if pkt.is_ack {
            if self.flows[i].spec.src != host {
                return; // stray (flood copy)
            }
            let rtt = now.saturating_since(pkt.sent_at).as_secs_f64();
            // An ACK burst carries the cumulative values
            // `seq-count+1..=seq`; replay them in order, collecting any
            // fast retransmits into a scratch buffer (can't emit while the
            // sender state is borrowed).
            let mut rtx = std::mem::take(&mut self.scratch_rtx);
            rtx.clear();
            {
                let f = &mut self.flows[i];
                let SourceKind::Tcp(ref mut t) = f.source else {
                    self.scratch_rtx = rtx;
                    return;
                };
                let first = pkt.seq + 1 - pkt.count as u64;
                for v in first..=pkt.seq {
                    let advanced = t.on_ack(v, now, Some(rtt));
                    if !advanced && t.dup_acks == 3 && t.retransmitting != Some(t.cum_ack) {
                        t.on_fast_retransmit();
                        t.retransmitting = Some(t.cum_ack);
                        rtx.push(t.cum_ack);
                        t.in_flight = t.in_flight.saturating_sub(1);
                    }
                }
            }
            for &seq in &rtx {
                let p = Pkt {
                    flow: i,
                    key: self.flows[i].spec.key,
                    size: self.config.data_pkt,
                    seq,
                    is_ack: false,
                    sent_at: now,
                    count: 1,
                };
                let src = self.flows[i].spec.src;
                self.host_emit(src, p, now, topo, drain, out);
            }
            rtx.clear();
            self.scratch_rtx = rtx;
            self.tcp_pump(i, now, topo, drain, out);
        } else {
            if self.flows[i].spec.dst != host {
                return; // stray (flood copy)
            }
            match self.flows[i].source {
                SourceKind::Tcp(_) => {
                    // Feed each segment of the burst to the receiver,
                    // collecting the cumulative ACK after each one.
                    let mut acks = std::mem::take(&mut self.scratch_acks);
                    acks.clear();
                    {
                        let f = &mut self.flows[i];
                        let SourceKind::Tcp(ref mut t) = f.source else {
                            unreachable!()
                        };
                        for k in 0..pkt.count as u64 {
                            acks.push(t.receive(pkt.seq + k));
                        }
                    }
                    let delivered = *acks.last().expect("count >= 1");
                    self.flows[i].delivered_segs = delivered;
                    if delivered >= self.flows[i].total_segs && self.flows[i].finished.is_none() {
                        self.flows[i].finished = Some(now);
                        out.finished.push(i);
                    }
                    let dst = self.flows[i].spec.dst;
                    let rkey = self.flows[i].spec.key.reversed();
                    // A strict +1 chain of cumulative ACKs coalesces into
                    // one ACK burst; anything else (duplicates from gaps,
                    // jumps from gap fills) must keep per-value ACKs so
                    // dup-ack counting at the sender is exact.
                    let chain = acks.windows(2).all(|w| w[1] == w[0] + 1);
                    if chain {
                        let ack_pkt = Pkt {
                            flow: i,
                            key: rkey,
                            size: self.config.ack_pkt,
                            seq: *acks.last().expect("count >= 1"),
                            is_ack: true,
                            sent_at: pkt.sent_at,
                            count: acks.len() as u32,
                        };
                        self.host_emit(dst, ack_pkt, now, topo, drain, out);
                    } else {
                        for &ack in &acks {
                            let ack_pkt = Pkt {
                                flow: i,
                                key: rkey,
                                size: self.config.ack_pkt,
                                seq: ack,
                                is_ack: true,
                                sent_at: pkt.sent_at,
                                count: 1,
                            };
                            self.host_emit(dst, ack_pkt, now, topo, drain, out);
                        }
                    }
                    acks.clear();
                    self.scratch_acks = acks;
                }
                SourceKind::Cbr { .. } => {
                    self.flows[i].delivered_segs += pkt.count as u64;
                    if self.flows[i].delivered_segs >= self.flows[i].total_segs
                        && self.flows[i].finished.is_none()
                    {
                        self.flows[i].finished = Some(now);
                        out.finished.push(i);
                    }
                }
            }
        }
    }

    /// Switch classifies and forwards a packet.
    #[allow(clippy::too_many_arguments)]
    fn switch_forward(
        &mut self,
        node: NodeId,
        in_port: PortNo,
        pkt: Pkt,
        now: SimTime,
        topo: &Topology,
        switches: &mut HashMap<NodeId, OpenFlowSwitch>,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        let Some(sw) = switches.get_mut(&node) else {
            return;
        };
        let count = pkt.count;
        let gen = sw.generation();
        let use_cache = self.config.decision_cache;
        let ck = (node, in_port, pkt.flow, pkt.is_ack);
        let cached_valid = use_cache
            && self
                .cache
                .get(&ck)
                .is_some_and(|e| e.gen == gen && e.key == pkt.key);
        if use_cache {
            if cached_valid {
                self.cache_hits += 1;
            } else {
                if self.cache.contains_key(&ck) {
                    self.cache_invalidations += 1;
                }
                self.cache_misses += 1;
            }
        }

        // Phase 1: resolve the decision and replay every switch-side
        // effect a per-packet walk would have had (classification
        // counters, meter tokens, byte credits). The cached path must be
        // bit-identical to the walk, so `commit_matched_n` mirrors
        // `process`'s commit and meters are consumed packet by packet.
        let mut ports = std::mem::take(&mut self.scratch_ports);
        ports.clear();
        // verdict kind: 0 = forward, 1 = to-controller, 2 = drop
        let (vk, key_out, pass) = if cached_valid {
            let e = self.cache.get(&ck).expect("checked above");
            let res = &e.res;
            sw.commit_matched_n(&res.matched, count as u64, now);
            let pass = Self::consume_meters(sw, &res.meters, pkt.size, count, now);
            if pass > 0 {
                sw.credit_bytes(
                    &res.matched,
                    ByteSize::bytes(pkt.size as u64 * pass as u64),
                    ByteSize::bytes(pkt.size as u64),
                    now,
                );
            }
            let vk = match &res.verdict {
                Verdict::Forward(ps) => {
                    ports.extend_from_slice(ps);
                    0u8
                }
                Verdict::ToController => 1,
                Verdict::Drop(_) => 2,
            };
            (vk, res.key_out, pass)
        } else {
            // `process` commits one classification; the rest of the burst
            // rides along with one aggregate commit.
            let res = sw.process(in_port, &pkt.key, now);
            if count > 1 {
                sw.commit_matched_n(&res.matched, count as u64 - 1, now);
            }
            let pass = Self::consume_meters(sw, &res.meters, pkt.size, count, now);
            if pass > 0 {
                sw.credit_bytes(
                    &res.matched,
                    ByteSize::bytes(pkt.size as u64 * pass as u64),
                    ByteSize::bytes(pkt.size as u64),
                    now,
                );
            }
            let vk = match &res.verdict {
                Verdict::Forward(ps) => {
                    ports.extend_from_slice(ps);
                    0u8
                }
                Verdict::ToController => 1,
                Verdict::Drop(_) => 2,
            };
            let key_out = res.key_out;
            if use_cache {
                self.cache.insert(
                    ck,
                    CacheEntry {
                        gen,
                        key: pkt.key,
                        res,
                    },
                );
            }
            (vk, key_out, pass)
        };

        // Phase 2: act on the verdict. Meter-failed packets drop first
        // (exactly like the per-packet early return); only the passing
        // prefix reaches the verdict.
        if pass < count {
            self.drop_pkt_n(&pkt, count - pass);
        }
        if pass > 0 {
            match vk {
                0 => {
                    for &port in &ports {
                        let mut p = pkt.clone();
                        p.key = key_out;
                        p.count = pass;
                        self.enqueue(node, port, p, now, topo, drain, out);
                    }
                }
                1 => {
                    // bufferless reactive setup: packets dropped, one
                    // FlowIn raised per burst (the controller sees the
                    // head packet's miss; followers ride along)
                    self.drop_pkt_n(&pkt, pass);
                    let msg = switches
                        .get(&node)
                        .expect("switch exists")
                        .flow_in(in_port, &pkt.key);
                    out.flow_ins.push(msg);
                }
                _ => {
                    self.drop_pkt_n(&pkt, pass);
                }
            }
        }
        ports.clear();
        self.scratch_ports = ports;
    }

    /// Runs a burst through a decision's meter chain packet by packet, in
    /// meter order — exactly the token consumption `count` separate walks
    /// at the same instant would produce. Returns how many packets passed
    /// every meter; because token buckets only drain within one timestamp,
    /// the passing packets are always the burst's prefix.
    fn consume_meters(
        sw: &mut OpenFlowSwitch,
        meters: &[MeterId],
        size: u32,
        count: u32,
        now: SimTime,
    ) -> u32 {
        if meters.is_empty() {
            return count;
        }
        let mut pass = 0u32;
        let mut failed = false;
        for _ in 0..count {
            let mut ok = true;
            for m in meters {
                if let Some(me) = sw.meter_mut(*m) {
                    if !me.try_consume(size as u64, now) {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && !failed {
                pass += 1;
            } else {
                debug_assert!(!ok, "meter pass set must be a prefix");
                failed = true;
            }
        }
        pass
    }

    /// Enqueues a packet on an output port (tail drop) and kicks the
    /// serializer if idle.
    #[allow(clippy::too_many_arguments)]
    fn enqueue(
        &mut self,
        node: NodeId,
        port: PortNo,
        mut pkt: Pkt,
        now: SimTime,
        topo: &Topology,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        let Some(link_id) = topo.link_from(node, port) else {
            self.drop_pkt(&pkt);
            return;
        };
        if !topo.link(link_id).map(|l| l.is_up()).unwrap_or(false) {
            self.drop_pkt(&pkt);
            return;
        }
        let buffer = self.config.buffer.as_bytes();
        // Tail drop with partial burst fit: as many packets as the buffer
        // still holds enter the queue, the rest drop — the same outcome
        // `count` individual arrivals would produce.
        let fit = {
            let pq = self
                .queues
                .entry((node, port))
                .or_insert_with(PortQueue::new);
            (buffer.saturating_sub(pq.queued_bytes) / pkt.size.max(1) as u64).min(pkt.count as u64)
                as u32
        };
        if fit == 0 {
            self.drop_pkt(&pkt);
            return;
        }
        if fit < pkt.count {
            self.drop_pkt_n(&pkt, pkt.count - fit);
            if pkt.is_ack {
                // An ACK burst's `seq` is its final value; keeping the
                // earliest `fit` values lowers it accordingly.
                pkt.seq -= (pkt.count - fit) as u64;
            }
            pkt.count = fit;
        }
        let pq = self.queues.get_mut(&(node, port)).expect("inserted above");
        pq.queued_bytes += pkt.size as u64 * pkt.count as u64;
        pq.queue.push_back(pkt);
        let was_busy = pq.busy;
        self.start_tx_if_idle(node, port, now, topo, drain, out);
        if !was_busy
            && self
                .queues
                .get(&(node, port))
                .map(|q| q.busy)
                .unwrap_or(false)
        {
            out.transitions.push((link_id, true));
        }
    }

    /// Starts serializing the head-of-line packet if the port is idle.
    fn start_tx_if_idle(
        &mut self,
        node: NodeId,
        port: PortNo,
        now: SimTime,
        topo: &Topology,
        drain: &DrainFn<'_>,
        out: &mut PktOut,
    ) {
        let Some(link_id) = topo.link_from(node, port) else {
            return;
        };
        let link = topo.link(link_id).expect("link exists");
        let (dst, dst_port, prop) = (link.dst, link.dst_port, link.delay);
        let Some(pq) = self.queues.get_mut(&(node, port)) else {
            return;
        };
        if pq.busy {
            return;
        }
        let Some(mut pkt) = pq.queue.pop_front() else {
            return;
        };
        pq.queued_bytes -= pkt.size as u64 * pkt.count as u64;
        // Serializer drain coalescing: back-to-back queued packets of the
        // same flow/direction with contiguous sequences merge into the
        // departing burst (up to the cap). With `burst == 1` the loop
        // never fires and the plane is bit-identical to per-packet.
        let cap = self.config.burst.max(1);
        while pkt.count < cap {
            let mergeable = match pq.queue.front() {
                Some(next) => {
                    next.flow == pkt.flow
                        && next.is_ack == pkt.is_ack
                        && next.size == pkt.size
                        && next.key == pkt.key
                        && pkt.count + next.count <= cap
                        && if pkt.is_ack {
                            // ACK bursts are contiguous when the next
                            // burst's first value follows our last.
                            next.seq == pkt.seq + next.count as u64
                        } else {
                            next.seq == pkt.seq + pkt.count as u64
                        }
                }
                None => false,
            };
            if !mergeable {
                break;
            }
            let next = pq.queue.pop_front().expect("checked above");
            pq.queued_bytes -= next.size as u64 * next.count as u64;
            if pkt.is_ack {
                pkt.seq = next.seq;
            }
            pkt.count += next.count;
            // head's sent_at is kept: the oldest timestamp gives the
            // most conservative RTT sample
        }
        let bps = drain(link_id);
        if bps <= f64::EPSILON {
            // The link cannot serialize right now (zero capacity or no
            // residual): the head packet is lost, but the port must not
            // wedge — leave the serializer idle so later packets retry.
            pq.busy = false;
            self.drop_pkt(&pkt);
            return;
        }
        pq.busy = true;
        let burst_bytes = pkt.size as u64 * pkt.count as u64;
        // Aggregate latency arithmetic: the serializer is busy for the
        // whole burst (correct throughput, backlog and fluid coupling),
        // but the burst is handed downstream at the *head* packet's
        // arrival — per-packet cut-through pipelining is what the oracle
        // does, and it is what keeps RTTs (and so TCP dynamics) within
        // the burst-length error bound. With `count == 1` both times are
        // the packet's own, bit-identical to the per-packet plane.
        let ser_full = SimDuration::from_secs_f64(burst_bytes as f64 * 8.0 / bps);
        let ser_head = SimDuration::from_secs_f64(pkt.size as f64 * 8.0 / bps);
        self.link_bytes[link_id.index()] += burst_bytes as f64;
        self.tx_packets += pkt.count as u64;
        self.burst_len_hist[((31 - pkt.count.leading_zeros()) as usize).min(7)] += 1;
        if pkt.count > 1 {
            self.bursts_formed += 1;
        }
        out.events
            .push((now + ser_full, PktEvent::TxDone { node, port }));
        out.events.push((
            now + ser_head + prop,
            PktEvent::Arrive {
                node: dst,
                in_port: dst_port,
                pkt,
            },
        ));
    }
}

/// Standalone driver events: the packet mechanics plus the control-plane
/// crossings the baseline models itself.
#[derive(Debug)]
enum Ev {
    Pkt(PktEvent),
    ToController(Box<SwitchMsg>),
    ToSwitch { switch: NodeId, msg: Box<CtrlMsg> },
}

/// The standalone packet-level network simulator (see module docs).
pub struct PacketNet {
    topo: Topology,
    switches: HashMap<NodeId, OpenFlowSwitch>,
    plane: PacketPlane,
    config: PacketSimConfig,
}

impl PacketNet {
    /// Builds the packet plane over a topology.
    pub fn new(topo: Topology, config: PacketSimConfig) -> Self {
        let mut switches = HashMap::new();
        for (id, node) in topo.nodes() {
            if node.kind.is_switch() {
                let ports: Vec<_> = topo.ports(id).collect();
                switches.insert(id, OpenFlowSwitch::new(id, 2, &ports));
            }
        }
        let nl = topo.link_count();
        PacketNet {
            plane: PacketPlane::new(nl, config),
            topo,
            switches,
            config,
        }
    }

    /// Runs `specs` through the network under `controller` until `horizon`.
    pub fn run(
        mut self,
        controller: &mut dyn Controller,
        specs: Vec<PktFlowSpec>,
        horizon: SimTime,
    ) -> PacketResults {
        let start_wall = Instant::now();
        let mut q: EventQueue<Ev> = EventQueue::new();

        // Controller bootstrap at t=0, synchronous (as in the fluid plane).
        let mut out = Outbox::new();
        {
            let ctx = ControllerCtx {
                topo: &self.topo,
                now: SimTime::ZERO,
            };
            controller.on_start(&ctx, &mut out);
        }
        for (sw, msg) in out.msgs.drain(..) {
            if let Some(s) = self.switches.get_mut(&sw) {
                let _ = s.apply(&msg, SimTime::ZERO);
            }
        }

        for spec in specs {
            let start = spec.start;
            let i = self.plane.add_flow(spec);
            q.schedule_at(start, Ev::Pkt(PktEvent::Start(i)));
        }

        let mut events = 0u64;
        let mut pkt_out = PktOut::default();
        while let Some(t) = q.peek_time() {
            if t > horizon {
                break;
            }
            let ev = q.pop().expect("peeked");
            events += 1;
            let now = ev.time;
            match ev.event {
                Ev::Pkt(p) => {
                    // Baseline coupling: links drain at full capacity.
                    let topo = &self.topo;
                    let drain =
                        |l: LinkId| topo.link(l).map(|lk| lk.capacity.as_bps()).unwrap_or(0.0);
                    self.plane
                        .handle(now, p, topo, &mut self.switches, &drain, &mut pkt_out);
                    for (t, e) in pkt_out.events.drain(..) {
                        q.schedule_at(t, Ev::Pkt(e));
                    }
                    for msg in pkt_out.flow_ins.drain(..) {
                        q.schedule_at(
                            now + self.config.ctrl_latency,
                            Ev::ToController(Box::new(msg)),
                        );
                    }
                    pkt_out.clear();
                }
                Ev::ToController(msg) => {
                    let mut out = Outbox::new();
                    {
                        let ctx = ControllerCtx {
                            topo: &self.topo,
                            now,
                        };
                        controller.dispatch(&msg, &ctx, &mut out);
                    }
                    for (sw, m) in out.msgs {
                        q.schedule_at(
                            now + self.config.ctrl_latency,
                            Ev::ToSwitch {
                                switch: sw,
                                msg: Box::new(m),
                            },
                        );
                    }
                    // timers unsupported in the packet baseline (documented)
                }
                Ev::ToSwitch { switch, msg } => {
                    if let Some(sw) = self.switches.get_mut(&switch) {
                        for reply in sw.apply(&msg, now) {
                            q.schedule_at(
                                now + self.config.ctrl_latency,
                                Ev::ToController(Box::new(reply)),
                            );
                        }
                    }
                }
            }
        }

        let sim_time = horizon;
        PacketResults {
            records: self.plane.records(horizon),
            link_bytes: self.plane.link_bytes.clone(),
            drops: self.plane.drops,
            events,
            wall_seconds: start_wall.elapsed().as_secs_f64(),
            sim_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TcpState;
    use horse_controlplane::{PolicyGenerator, PolicyRule, PolicySpec};
    use horse_topology::builders;

    fn mk_spec(
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        sport: u16,
        size: ByteSize,
        source: SourceKind,
    ) -> PktFlowSpec {
        let s = topo.node(src).unwrap();
        let d = topo.node(dst).unwrap();
        PktFlowSpec {
            key: FlowKey::tcp(
                s.mac().unwrap(),
                d.mac().unwrap(),
                s.ip().unwrap(),
                d.ip().unwrap(),
                sport,
                80,
            ),
            src,
            dst,
            size,
            start: SimTime::from_millis(10),
            source,
        }
    }

    fn run_star(
        size: ByteSize,
        source: SourceKind,
        horizon_s: u64,
    ) -> (PacketResults, Topology, Vec<NodeId>) {
        let f = builders::star(3, Rate::mbps(100.0));
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::MacForwarding),
            &f.topology,
        )
        .unwrap();
        let net = PacketNet::new(f.topology.clone(), PacketSimConfig::default());
        let spec = mk_spec(&f.topology, f.members[0], f.members[1], 1000, size, source);
        let res = net.run(&mut gen, vec![spec], SimTime::from_secs(horizon_s));
        (res, f.topology, f.members)
    }

    #[test]
    fn cbr_flow_delivers_all_bytes() {
        let (res, _, _) = run_star(
            ByteSize::bytes(150_000), // 100 packets
            SourceKind::Cbr { rate_bps: 10e6 },
            60,
        );
        assert!(res.records[0].completed, "delivered {:?}", res.records[0]);
        // 150 kB at 10 Mbps = 120 ms (+ transit)
        let fct = res.records[0].fct_secs();
        assert!(fct > 0.118 && fct < 0.15, "fct {fct}");
        assert_eq!(res.drops, 0);
    }

    #[test]
    fn tcp_flow_completes_and_acks_flow_back() {
        let (res, _, _) = run_star(
            ByteSize::bytes(1_500_000), // 1000 segments
            SourceKind::Tcp(TcpState::new()),
            60,
        );
        assert!(res.records[0].completed);
        let fct = res.records[0].fct_secs();
        // ideal: 1.5 MB at ~100 Mbps ≈ 0.12 s; slow start adds RTTs
        assert!(fct > 0.12 && fct < 2.0, "fct {fct}");
    }

    #[test]
    fn tcp_fills_the_pipe_reasonably() {
        let (res, topo, members) = run_star(ByteSize::mib(4), SourceKind::Tcp(TcpState::new()), 60);
        assert!(res.records[0].completed);
        let fct = res.records[0].fct_secs();
        let ideal = 4.0 * 1048576.0 * 8.0 / 100e6;
        assert!(
            fct < ideal * 1.6,
            "tcp should reach ≥ ~60% of line rate: fct {fct} vs ideal {ideal}"
        );
        // bytes flowed over the source's access link
        let (lid, _) = topo.out_links(members[0]).next().unwrap();
        assert!(res.link_bytes[lid.index()] as u64 >= 4 * 1024 * 1024);
    }

    #[test]
    fn two_tcp_flows_share_a_bottleneck() {
        let f = builders::star(3, Rate::mbps(100.0));
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::MacForwarding),
            &f.topology,
        )
        .unwrap();
        let net = PacketNet::new(f.topology.clone(), PacketSimConfig::default());
        // both flows into member 2: its access link is the bottleneck
        let s1 = mk_spec(
            &f.topology,
            f.members[0],
            f.members[2],
            1000,
            ByteSize::mib(2),
            SourceKind::Tcp(TcpState::new()),
        );
        let s2 = mk_spec(
            &f.topology,
            f.members[1],
            f.members[2],
            2000,
            ByteSize::mib(2),
            SourceKind::Tcp(TcpState::new()),
        );
        let res = net.run(&mut gen, vec![s1, s2], SimTime::from_secs(60));
        assert!(res.records[0].completed && res.records[1].completed);
        // each ideally gets ~50 Mbps: 2 MiB each ⇒ ≈ 0.67 s total;
        // allow generous losses/sawtooth margin
        for r in &res.records {
            assert!(r.fct_secs() < 2.5, "fct {}", r.fct_secs());
        }
    }

    #[test]
    fn reactive_controller_installs_rules_after_miss() {
        let f = builders::star(2, Rate::mbps(100.0));
        let mut gen =
            PolicyGenerator::new(PolicySpec::new().with(PolicyRule::MacLearning), &f.topology)
                .unwrap();
        let net = PacketNet::new(f.topology.clone(), PacketSimConfig::default());
        let spec = mk_spec(
            &f.topology,
            f.members[0],
            f.members[1],
            1000,
            ByteSize::bytes(150_000),
            SourceKind::Tcp(TcpState::new()),
        );
        let res = net.run(&mut gen, vec![spec], SimTime::from_secs(60));
        assert!(res.records[0].completed, "{:?}", res.records[0]);
        assert!(res.drops >= 1, "first packet(s) dropped at the miss");
    }

    #[test]
    fn meter_polices_cbr_at_packet_level() {
        let f = builders::star(2, Rate::mbps(100.0));
        let mut gen = PolicyGenerator::new(
            PolicySpec::new()
                .with(PolicyRule::MacForwarding)
                .with(PolicyRule::RateLimit {
                    src: "h1".into(),
                    dst: "h2".into(),
                    rate_mbps: 10.0,
                }),
            &f.topology,
        )
        .unwrap();
        let net = PacketNet::new(f.topology.clone(), PacketSimConfig::default());
        // offer 50 Mbps for 2 simulated seconds against a 10 Mbps policer
        let spec = PktFlowSpec {
            start: SimTime::ZERO,
            ..mk_spec(
                &f.topology,
                f.members[0],
                f.members[1],
                1000,
                ByteSize::bytes(12_500_000), // 100 Mb = 2 s at 50 Mbps
                SourceKind::Cbr { rate_bps: 50e6 },
            )
        };
        let res = net.run(&mut gen, vec![spec], SimTime::from_secs(2));
        // delivered ≈ 10 Mbps × 2 s = 2.5 MB (+ burst); must be well under
        // the offered 12.5 MB and the drops must account for the excess
        let delivered = res.records[0].bytes_delivered as f64;
        assert!(
            delivered < 5_000_000.0,
            "policer must clamp: delivered {delivered}"
        );
        assert!(res.drops > 1000, "policer drops: {}", res.drops);
    }

    #[test]
    fn buffer_overflow_drops() {
        // 1 Mbps bottleneck, CBR at 100 Mbps: the queue must overflow
        let f = builders::star(2, Rate::mbps(1.0));
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::MacForwarding),
            &f.topology,
        )
        .unwrap();
        let net = PacketNet::new(f.topology.clone(), PacketSimConfig::default());
        let spec = PktFlowSpec {
            start: SimTime::ZERO,
            ..mk_spec(
                &f.topology,
                f.members[0],
                f.members[1],
                1000,
                ByteSize::mib(10),
                SourceKind::Cbr { rate_bps: 100e6 },
            )
        };
        let res = net.run(&mut gen, vec![spec], SimTime::from_secs(1));
        assert!(res.drops > 0, "tail drop must kick in");
    }

    #[test]
    fn plane_reports_transitions_and_finishes() {
        // Drive the plane directly: one CBR packet start-to-finish must
        // produce a busy transition, an idle transition and a finish.
        let f = builders::star(2, Rate::mbps(100.0));
        let mut gen = PolicyGenerator::new(
            PolicySpec::new().with(PolicyRule::MacForwarding),
            &f.topology,
        )
        .unwrap();
        let mut switches: HashMap<NodeId, OpenFlowSwitch> = HashMap::new();
        for (id, node) in f.topology.nodes() {
            if node.kind.is_switch() {
                let ports: Vec<_> = f.topology.ports(id).collect();
                switches.insert(id, OpenFlowSwitch::new(id, 2, &ports));
            }
        }
        let mut boot = Outbox::new();
        gen.on_start(
            &ControllerCtx {
                topo: &f.topology,
                now: SimTime::ZERO,
            },
            &mut boot,
        );
        for (sw, msg) in boot.msgs.drain(..) {
            if let Some(s) = switches.get_mut(&sw) {
                let _ = s.apply(&msg, SimTime::ZERO);
            }
        }
        let mut plane = PacketPlane::new(f.topology.link_count(), PacketSimConfig::default());
        let spec = PktFlowSpec {
            start: SimTime::ZERO,
            ..mk_spec(
                &f.topology,
                f.members[0],
                f.members[1],
                1000,
                ByteSize::bytes(1000), // single packet
                SourceKind::Cbr { rate_bps: 10e6 },
            )
        };
        let idx = plane.add_flow(spec);
        let drain = |l: LinkId| {
            f.topology
                .link(l)
                .map(|lk| lk.capacity.as_bps())
                .unwrap_or(0.0)
        };
        let mut out = PktOut::default();
        let mut q: Vec<(SimTime, PktEvent)> = vec![(SimTime::ZERO, PktEvent::Start(idx))];
        let mut saw_busy = false;
        let mut saw_idle = false;
        while !q.is_empty() {
            q.sort_by_key(|(t, _)| *t);
            let (now, ev) = q.remove(0);
            plane.handle(now, ev, &f.topology, &mut switches, &drain, &mut out);
            for (l, busy) in out.transitions.drain(..) {
                assert!(l.index() < f.topology.link_count());
                if busy {
                    saw_busy = true;
                } else {
                    saw_idle = true;
                }
            }
            q.append(&mut out.events);
            out.clear();
        }
        assert!(saw_busy && saw_idle, "serializer transitions reported");
        assert!(plane.is_finished(idx), "single packet delivered");
        assert_eq!(plane.delivered_bytes(idx), 1500);
        assert_eq!(plane.drops(), 0);
    }
}
