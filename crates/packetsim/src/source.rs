//! Traffic sources for the packet plane.

use horse_types::SimTime;

/// What kind of source drives a flow.
#[derive(Clone, Debug)]
pub enum SourceKind {
    /// Paced constant-bit-rate sender (UDP-like): one data packet every
    /// `mss × 8 / rate_bps` seconds until the byte budget is spent.
    Cbr {
        /// Offered rate in bps.
        rate_bps: f64,
    },
    /// Window-based TCP-Reno-style sender.
    Tcp(TcpState),
}

/// Sender-side TCP state (sequence numbers count MSS-sized segments).
#[derive(Clone, Debug)]
pub struct TcpState {
    /// Congestion window in segments (fractional growth in CA).
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    /// Next segment sequence number to send fresh.
    pub next_seq: u64,
    /// Highest cumulative ACK received (next expected by receiver).
    pub cum_ack: u64,
    /// Duplicate-ACK counter.
    pub dup_acks: u32,
    /// Smoothed RTT estimate (seconds).
    pub srtt: f64,
    /// Number of segments currently in flight.
    pub in_flight: u64,
    /// Send timestamps of unacked segments are approximated by the time
    /// of the oldest outstanding transmission (enough for a coarse RTO).
    pub oldest_tx: SimTime,
    /// Retransmission in progress for this seq (suppresses duplicates).
    pub retransmitting: Option<u64>,
    /// Consecutive RTO backoffs.
    pub backoff: u32,
    /// Receiver: highest in-order segment received (next expected).
    pub rcv_next: u64,
    /// Receiver: out-of-order segments buffered.
    pub rcv_ooo: std::collections::BTreeSet<u64>,
}

impl TcpState {
    /// Fresh connection state (IW = 10 segments, RFC 6928).
    pub fn new() -> Self {
        TcpState {
            cwnd: 10.0,
            ssthresh: f64::INFINITY,
            next_seq: 0,
            cum_ack: 0,
            dup_acks: 0,
            srtt: 0.0,
            in_flight: 0,
            oldest_tx: SimTime::ZERO,
            retransmitting: None,
            backoff: 0,
            rcv_next: 0,
            rcv_ooo: std::collections::BTreeSet::new(),
        }
    }

    /// Window space available to send fresh segments.
    pub fn can_send(&self) -> bool {
        (self.in_flight as f64) < self.cwnd
    }

    /// Applies a cumulative ACK; returns `true` when new data was acked.
    pub fn on_ack(&mut self, ack: u64, now: SimTime, rtt_sample: Option<f64>) -> bool {
        if ack > self.cum_ack {
            let newly = ack - self.cum_ack;
            self.cum_ack = ack;
            self.in_flight = self.in_flight.saturating_sub(newly);
            self.dup_acks = 0;
            self.retransmitting = None;
            self.backoff = 0;
            self.oldest_tx = now;
            if let Some(rtt) = rtt_sample {
                self.srtt = if self.srtt == 0.0 {
                    rtt
                } else {
                    0.875 * self.srtt + 0.125 * rtt
                };
            }
            // growth: slow start below ssthresh, else 1/cwnd per ACK
            if self.cwnd < self.ssthresh {
                self.cwnd += newly as f64;
            } else {
                self.cwnd += newly as f64 / self.cwnd;
            }
            true
        } else {
            self.dup_acks += 1;
            false
        }
    }

    /// Halves the window after a loss signal (fast retransmit).
    pub fn on_fast_retransmit(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
        self.dup_acks = 0;
    }

    /// Collapses the window after an RTO.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.backoff += 1;
        self.in_flight = 0; // everything is presumed lost; resend from cum_ack
        self.next_seq = self.cum_ack;
        self.dup_acks = 0;
        self.retransmitting = None;
    }

    /// Current retransmission timeout (seconds): `max(4×srtt, floor)`
    /// doubled per backoff, clamped to a ceiling.
    pub fn rto(&self, floor: f64) -> f64 {
        let base = if self.srtt > 0.0 {
            (4.0 * self.srtt).max(floor)
        } else {
            floor
        };
        (base * (1u64 << self.backoff.min(6)) as f64).min(4.0)
    }

    /// Receiver side: ingest segment `seq`, return the cumulative ACK to
    /// send back.
    pub fn receive(&mut self, seq: u64) -> u64 {
        if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.rcv_ooo.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else if seq > self.rcv_next {
            self.rcv_ooo.insert(seq);
        }
        self.rcv_next
    }
}

impl Default for TcpState {
    fn default() -> Self {
        Self::new()
    }
}

// Checkpointing: sources live inside packet-plane flow runtime state.
horse_types::impl_snap_struct!(TcpState {
    cwnd,
    ssthresh,
    next_seq,
    cum_ack,
    dup_acks,
    srtt,
    in_flight,
    oldest_tx,
    retransmitting,
    backoff,
    rcv_next,
    rcv_ooo,
});

impl horse_types::Snap for SourceKind {
    fn snap(&self, w: &mut horse_types::SnapWriter) {
        match self {
            SourceKind::Cbr { rate_bps } => {
                w.u8(0);
                w.f64(*rate_bps);
            }
            SourceKind::Tcp(t) => {
                w.u8(1);
                t.snap(w);
            }
        }
    }
    fn unsnap(r: &mut horse_types::SnapReader) -> Result<Self, horse_types::SnapError> {
        match r.u8()? {
            0 => Ok(SourceKind::Cbr { rate_bps: r.f64()? }),
            1 => Ok(SourceKind::Tcp(horse_types::Snap::unsnap(r)?)),
            t => Err(horse_types::SnapError::new(
                format!("bad SourceKind tag {t}"),
                r.position(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut t = TcpState::new();
        t.in_flight = 10;
        // 10 ACKs each acking 1 segment: cwnd 10 -> 20
        for a in 1..=10u64 {
            t.on_ack(a, SimTime::from_millis(a), Some(0.01));
        }
        assert!((t.cwnd - 20.0).abs() < 1e-9);
        assert_eq!(t.in_flight, 0);
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let mut t = TcpState::new();
        t.ssthresh = 10.0;
        t.cwnd = 10.0;
        t.in_flight = 10;
        for a in 1..=10u64 {
            t.on_ack(a, SimTime::from_millis(a), None);
        }
        // +1/cwnd per ack ≈ +1 per window
        assert!(t.cwnd > 10.9 && t.cwnd < 11.1, "cwnd {}", t.cwnd);
    }

    #[test]
    fn dup_acks_counted_and_fast_retransmit_halves() {
        let mut t = TcpState::new();
        t.cwnd = 16.0;
        t.in_flight = 16;
        t.on_ack(5, SimTime::from_millis(1), None);
        assert!(!t.on_ack(5, SimTime::from_millis(2), None));
        assert!(!t.on_ack(5, SimTime::from_millis(3), None));
        assert!(!t.on_ack(5, SimTime::from_millis(4), None));
        assert_eq!(t.dup_acks, 3);
        let before = t.cwnd;
        t.on_fast_retransmit();
        assert!((t.cwnd - before / 2.0).abs() < 1e-9, "cwnd {}", t.cwnd);
        assert_eq!(t.dup_acks, 0);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut t = TcpState::new();
        t.cwnd = 32.0;
        t.in_flight = 20;
        t.next_seq = 40;
        t.cum_ack = 20;
        t.on_timeout();
        assert_eq!(t.cwnd, 1.0);
        assert_eq!(t.next_seq, 20, "resend from cum_ack");
        assert_eq!(t.in_flight, 0);
    }

    #[test]
    fn rto_backs_off_and_caps() {
        let mut t = TcpState::new();
        t.srtt = 0.05;
        let r0 = t.rto(0.01);
        t.backoff = 1;
        assert!((t.rto(0.01) - r0 * 2.0).abs() < 1e-9);
        t.backoff = 20;
        assert!(t.rto(0.01) <= 4.0);
    }

    #[test]
    fn receiver_reorders() {
        let mut t = TcpState::new();
        assert_eq!(t.receive(0), 1);
        assert_eq!(t.receive(2), 1, "gap at 1");
        assert_eq!(t.receive(3), 1);
        assert_eq!(t.receive(1), 4, "gap filled, cumulative jumps");
        assert!(t.rcv_ooo.is_empty());
    }

    #[test]
    fn srtt_ewma() {
        let mut t = TcpState::new();
        t.in_flight = 2;
        t.on_ack(1, SimTime::from_millis(1), Some(0.100));
        assert!((t.srtt - 0.1).abs() < 1e-12);
        t.on_ack(2, SimTime::from_millis(2), Some(0.200));
        assert!((t.srtt - (0.875 * 0.1 + 0.125 * 0.2)).abs() < 1e-12);
    }
}
