//! # horse-packetsim
//!
//! A **packet-level reference simulator** sharing Horse's topology and
//! OpenFlow pipeline. It is the controlled baseline for the paper's two
//! evaluation axes: *simulation time* (packet-level cost grows with every
//! packet × hop, flow-level with flow events only) and *accuracy* (how
//! close the fluid abstraction gets to per-packet ground truth). It stands
//! in for the Mininet/ns-3-class tools the poster compares against
//! (substitution documented in DESIGN.md §4).
//!
//! Modelled mechanics:
//!
//! * store-and-forward switching: per-port output queues with finite
//!   buffers and tail drop, serialization at link rate, propagation delay;
//! * the same [`horse_openflow::OpenFlowSwitch`] classification (tables,
//!   groups, meters as token buckets) as the fluid plane;
//! * paced CBR (UDP-like) sources and a window-based TCP source
//!   (slow start, congestion avoidance, triple-dup-ACK fast retransmit,
//!   RTO with exponential backoff, cumulative ACKs, 64-byte ACK packets);
//! * reactive controllers: a table miss raises `FlowIn` (the packet is
//!   dropped, as on a bufferless OpenFlow switch) and FlowMods return
//!   after the control latency.
//!
//! Deliberately omitted (documented, smoltcp-style): SACK, delayed ACKs,
//! Nagle, window scaling beyond the configured cap, ECN, and RED queues —
//! none of which change the first-order utilization/FCT comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod source;

pub use engine::{
    DrainFn, PacketNet, PacketPlane, PacketResults, PacketSimConfig, Pkt, PktEvent, PktFlowRecord,
    PktFlowSpec, PktOut,
};
pub use source::{SourceKind, TcpState};
