//! Packet-plane hot-path allocation discipline (PR 10 satellite).
//!
//! [`PacketPlane::handle`] is the per-event workhorse of both drivers
//! (the standalone baseline and the hybrid co-simulation). Once warm —
//! port queues touched, the decision cache populated, scratch buffers
//! grown to their high-water marks — steady-state event handling must
//! perform **zero heap allocations**: burst coalescing reuses the queued
//! packets in place, ACK replay and fast-retransmit collection run
//! through the plane's scratch vectors, and cache hits replay memoized
//! pipeline verdicts without touching the tables.
//!
//! A counting global allocator wraps the system allocator for this test
//! binary; deltas are sampled tightly around each `handle` call (the
//! event queue itself belongs to the driver, not the plane). Loss-free
//! traffic only: a lost segment legitimately allocates in the receiver's
//! out-of-order `BTreeSet`, which is the cold path by construction.

use horse_controlplane::{
    Controller, ControllerCtx, Outbox, PolicyGenerator, PolicyRule, PolicySpec,
};
use horse_events::EventQueue;
use horse_openflow::switch::OpenFlowSwitch;
use horse_packetsim::{
    PacketPlane, PacketSimConfig, PktEvent, PktFlowSpec, PktOut, SourceKind, TcpState,
};
use horse_topology::builders;
use horse_types::{ByteSize, FlowKey, LinkId, NodeId, Rate, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Drives one flow through a 2-member star with proactive MAC forwarding
/// until `horizon`, counting allocations strictly inside the
/// `PacketPlane::handle` calls after the first `warmup` events. Returns
/// `(allocs_in_handle, events_processed, flow_completed)`.
fn drive(source: SourceKind, size: ByteSize, warmup: u64) -> (u64, u64, bool) {
    let f = builders::star(2, Rate::mbps(100.0));
    let topo = f.topology;
    let mut gen =
        PolicyGenerator::new(PolicySpec::new().with(PolicyRule::MacForwarding), &topo).unwrap();
    let mut switches: HashMap<NodeId, OpenFlowSwitch> = HashMap::new();
    for (id, node) in topo.nodes() {
        if node.kind.is_switch() {
            let ports: Vec<_> = topo.ports(id).collect();
            switches.insert(id, OpenFlowSwitch::new(id, 2, &ports));
        }
    }
    // Proactive bootstrap, as the standalone driver does at t=0.
    let mut out = Outbox::new();
    gen.on_start(
        &ControllerCtx {
            topo: &topo,
            now: SimTime::ZERO,
        },
        &mut out,
    );
    for (sw, msg) in out.msgs.drain(..) {
        if let Some(s) = switches.get_mut(&sw) {
            let _ = s.apply(&msg, SimTime::ZERO);
        }
    }

    let (src, dst) = (f.members[0], f.members[1]);
    let (s, d) = (topo.node(src).unwrap(), topo.node(dst).unwrap());
    let mut plane = PacketPlane::new(topo.link_count(), PacketSimConfig::default());
    let i = plane.add_flow(PktFlowSpec {
        key: FlowKey::tcp(
            s.mac().unwrap(),
            d.mac().unwrap(),
            s.ip().unwrap(),
            d.ip().unwrap(),
            1000,
            80,
        ),
        src,
        dst,
        size,
        start: SimTime::from_millis(1),
        source,
    });

    let horizon = SimTime::from_secs(60);
    let mut q: EventQueue<PktEvent> = EventQueue::new();
    q.schedule_at(SimTime::from_millis(1), PktEvent::Start(i));
    let mut pkt_out = PktOut::default();
    // The completion push is a once-per-flow cold event that may land
    // anywhere in the run; give the buffer its one-slot capacity up
    // front, exactly as the first completion of any earlier flow would.
    pkt_out.finished.reserve(1);
    let mut events = 0u64;
    let mut in_handle = 0u64;
    while let Some(t) = q.peek_time() {
        if t > horizon {
            break;
        }
        let ev = q.pop().expect("peeked");
        events += 1;
        let drain = |l: LinkId| topo.link(l).map(|lk| lk.capacity.as_bps()).unwrap_or(0.0);
        let before = allocs();
        plane.handle(
            ev.time,
            ev.event,
            &topo,
            &mut switches,
            &drain,
            &mut pkt_out,
        );
        if events > warmup {
            in_handle += allocs() - before;
        }
        assert!(
            pkt_out.flow_ins.is_empty(),
            "proactive forwarding must never miss"
        );
        for (t, e) in pkt_out.events.drain(..) {
            q.schedule_at(t, e);
        }
        pkt_out.clear();
    }
    assert_eq!(plane.drops(), 0, "the loss-free premise must hold");
    (in_handle, events, plane.is_finished(i))
}

/// CBR steady state: pacing ticks, burst sends, store-and-forward hops
/// and receiver accounting — the pure forwarding cadence.
#[test]
fn cbr_steady_state_handle_is_allocation_free() {
    let src = || SourceKind::Cbr { rate_bps: 20e6 };
    // Pass 1 sizes the run; pass 2 measures its second half.
    let (_, total, done) = drive(src(), ByteSize::bytes(1_500_000), u64::MAX);
    assert!(done, "CBR flow must complete");
    let (n, _, _) = drive(src(), ByteSize::bytes(1_500_000), total / 2);
    assert_eq!(
        n, 0,
        "CBR steady-state handle allocated {n} times after warmup"
    );
}

/// TCP in its loss-free operating region (the flow completes within the
/// window ramp, under the buffer ceiling): window pumps, burst
/// coalescing at the serializer, cumulative-ACK burst replay and the
/// decision-cache hit path all ride scratch state.
#[test]
fn tcp_steady_state_handle_is_allocation_free() {
    let src = || SourceKind::Tcp(TcpState::new());
    let size = ByteSize::bytes(192_000); // 128 segments: completes in slow start
    let (_, total, done) = drive(src(), size, u64::MAX);
    assert!(done, "TCP flow must complete");
    let (n, _, _) = drive(src(), size, total / 2);
    assert_eq!(
        n, 0,
        "TCP steady-state handle allocated {n} times after warmup"
    );
}
