//! The future event list (FEL).
//!
//! A thin wrapper over `std::collections::BinaryHeap` with three properties
//! the simulator depends on:
//!
//! 1. **Determinism** — entries are ordered by `(time, seq)` where `seq` is
//!    a monotonically increasing scheduling counter, so simultaneous events
//!    pop in the order they were scheduled, on every run.
//! 2. **O(log n) cancellation** — [`EventQueue::cancel`] marks a handle as
//!    dead; dead entries are skipped lazily on pop ("tombstoning"). This is
//!    how the fluid data plane invalidates stale flow-completion events when
//!    rates change (rescheduling is the common case — see
//!    `horse-dataplane`).
//! 3. **Monotone time** — scheduling into the past is clamped to "now"
//!    (recorded in [`QueueStats::clamped`]) rather than silently reordering
//!    history.

use horse_types::{impl_snap_struct, SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Handles are unique per queue for the lifetime of the queue (64-bit
/// sequence numbers do not wrap in practice).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventHandle(u64);

impl EventHandle {
    /// A handle that never corresponds to a scheduled event.
    pub const NULL: EventHandle = EventHandle(u64::MAX);

    /// The raw sequence number, for checkpoint serialization. Handles
    /// survive a snapshot/restore cycle verbatim — seqs are stable — so
    /// `from_raw(h.raw())` on the restored queue addresses the same
    /// event.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from [`EventHandle::raw`].
    pub const fn from_raw(seq: u64) -> Self {
        EventHandle(seq)
    }
}

/// An event popped from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The handle it was scheduled under.
    pub handle: EventHandle,
    /// The payload.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Counters describing queue activity, exported with simulation results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events scheduled since creation.
    pub scheduled: u64,
    /// Events popped (delivered).
    pub delivered: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// Cancelled entries skipped during pops (tombstone overhead).
    pub skipped: u64,
    /// Events whose requested time lay in the past and was clamped to now.
    pub clamped: u64,
    /// Heap rebuilds triggered by tombstone pressure (dead entries
    /// exceeding half the heap): each compaction drops every dead entry
    /// in one O(n) pass instead of paying per-pop skips.
    pub compactions: u64,
}

impl_snap_struct!(QueueStats {
    scheduled,
    delivered,
    cancelled,
    skipped,
    clamped,
    compactions,
});

/// One entry of a [`QueueSnapshot`]: where/when it was scheduled and
/// whether it is a tombstone (cancelled but still occupying the heap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry<E> {
    /// Fire time.
    pub time: SimTime,
    /// Scheduling sequence number (the handle).
    pub seq: u64,
    /// True when the entry was cancelled but not yet compacted away —
    /// restoring it as a tombstone keeps `skipped`/`compactions`
    /// evolution identical to the uninterrupted run.
    pub dead: bool,
    /// The payload.
    pub event: E,
}

/// A frozen, canonical image of an [`EventQueue`].
///
/// Entries are sorted by `(time, seq)` — a total order, since seqs are
/// unique — so two queues holding the same logical state produce the
/// same snapshot regardless of their internal heap layout. Tombstones
/// are kept (with their `dead` flag) rather than dropped: the restored
/// queue must reproduce the original's compaction pressure and
/// `skipped` counter exactly for checkpoint/resume bit-equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueSnapshot<E> {
    /// Heap contents in `(time, seq)` order, dead entries included.
    pub entries: Vec<SnapshotEntry<E>>,
    /// The scheduling counter.
    pub next_seq: u64,
    /// The queue clock.
    pub now: SimTime,
    /// Activity counters.
    pub stats: QueueStats,
}

impl<E: horse_types::Snap> horse_types::Snap for SnapshotEntry<E> {
    fn snap(&self, w: &mut horse_types::SnapWriter) {
        self.time.snap(w);
        self.seq.snap(w);
        self.dead.snap(w);
        self.event.snap(w);
    }
    fn unsnap(r: &mut horse_types::SnapReader) -> Result<Self, horse_types::SnapError> {
        Ok(SnapshotEntry {
            time: horse_types::Snap::unsnap(r)?,
            seq: horse_types::Snap::unsnap(r)?,
            dead: horse_types::Snap::unsnap(r)?,
            event: horse_types::Snap::unsnap(r)?,
        })
    }
}

impl<E: horse_types::Snap> horse_types::Snap for QueueSnapshot<E> {
    fn snap(&self, w: &mut horse_types::SnapWriter) {
        self.entries.snap(w);
        self.next_seq.snap(w);
        self.now.snap(w);
        self.stats.snap(w);
    }
    fn unsnap(r: &mut horse_types::SnapReader) -> Result<Self, horse_types::SnapError> {
        Ok(QueueSnapshot {
            entries: horse_types::Snap::unsnap(r)?,
            next_seq: horse_types::Snap::unsnap(r)?,
            now: horse_types::Snap::unsnap(r)?,
            stats: horse_types::Snap::unsnap(r)?,
        })
    }
}

/// Deterministic future event list.
///
/// ```
/// use horse_events::EventQueue;
/// use horse_types::SimTime;
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule_at(SimTime::from_secs(2), "second");
/// let h = q.schedule_at(SimTime::from_secs(1), "first");
/// q.schedule_at(SimTime::from_secs(1), "also-first-but-later");
/// q.cancel(h);
/// let e = q.pop().unwrap();
/// assert_eq!(e.event, "also-first-but-later"); // "first" was cancelled
/// assert_eq!(q.pop().unwrap().event, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Cancelled sequence numbers whose heap entries are still present
    /// (tombstones): skipped lazily on pop or dropped by compaction.
    /// Invariant: every seq here has exactly one heap entry.
    dead: std::collections::HashSet<u64>,
    /// Seqs of live (scheduled, neither delivered nor cancelled) events —
    /// exact membership, so `cancel` and `len` cannot be confused by
    /// tombstone lifecycle. Memory is O(pending events).
    pending: std::collections::HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            dead: std::collections::HashSet::new(),
            pending: std::collections::HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Current simulated time — the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events pending.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queue activity counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedules `event` at absolute time `at` (clamped to `now` if in the
    /// past) and returns a cancellation handle.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        let time = if at < self.now {
            self.stats.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        self.stats.scheduled += 1;
        EventHandle(seq)
    }

    /// Schedules `event` after a delay relative to the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current time (fires after all events already
    /// scheduled for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventHandle {
        self.schedule_at(self.now, event)
    }

    /// Cancels a previously scheduled event. Returns `true` iff the event
    /// was still pending (i.e. the cancellation had effect): cancelling a
    /// delivered or already-cancelled event is a `false` no-op, however
    /// often it is retried.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle == EventHandle::NULL {
            return false;
        }
        if !self.pending.remove(&handle.0) {
            return false; // never scheduled, already delivered, or cancelled
        }
        self.dead.insert(handle.0);
        self.stats.cancelled += 1;
        self.maybe_compact();
        true
    }

    /// Rebuilds the heap without its tombstones once dead entries exceed
    /// half the heap: O(n) once instead of O(log n) per skipped pop, and
    /// it caps the memory a cancel-heavy workload (rate churn constantly
    /// rescheduling completions) can pin in dead entries.
    fn maybe_compact(&mut self) {
        if self.dead.len() * 2 <= self.heap.len() {
            return;
        }
        let mut live = std::mem::take(&mut self.heap).into_vec();
        // By the tombstone invariant every dead seq has a heap entry, so
        // this drops them all and the tombstone set empties exactly.
        live.retain(|e| !self.dead.remove(&e.seq));
        debug_assert!(self.dead.is_empty(), "tombstone without heap entry");
        self.heap = BinaryHeap::from(live);
        self.stats.compactions += 1;
    }

    /// Timestamp of the next live event, if any, without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the next live event **only if** it fires exactly at `t` —
    /// the epoch-drain primitive: the caller peeks the head timestamp
    /// once and then drains the whole same-instant batch (including
    /// events scheduled *for `t` during the drain*, which join the batch
    /// in seq order) without interleaving peeks and branches.
    ///
    /// ```
    /// use horse_events::EventQueue;
    /// use horse_types::SimTime;
    ///
    /// let mut q: EventQueue<u32> = EventQueue::new();
    /// q.schedule_at(SimTime::from_secs(1), 1);
    /// q.schedule_at(SimTime::from_secs(1), 2);
    /// q.schedule_at(SimTime::from_secs(2), 3);
    /// let t = q.peek_time().unwrap();
    /// let mut batch = Vec::new();
    /// while let Some(e) = q.pop_if_at(t) {
    ///     batch.push(e.event);
    /// }
    /// assert_eq!(batch, vec![1, 2]); // the t=2 event stays queued
    /// ```
    pub fn pop_if_at(&mut self, t: SimTime) -> Option<ScheduledEvent<E>> {
        self.skip_dead();
        if self.heap.peek()?.time != t {
            return None;
        }
        self.pop()
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skip_dead();
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue time went backwards");
        self.now = entry.time;
        self.pending.remove(&entry.seq);
        self.stats.delivered += 1;
        Some(ScheduledEvent {
            time: entry.time,
            handle: EventHandle(entry.seq),
            event: entry.event,
        })
    }

    /// Drops everything and resets the clock; statistics are preserved.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.dead.clear();
        self.pending.clear();
        self.now = SimTime::ZERO;
    }

    /// Captures the queue as a canonical [`QueueSnapshot`] (entries in
    /// `(time, seq)` order, tombstones flagged). The queue is untouched.
    pub fn snapshot(&self) -> QueueSnapshot<E>
    where
        E: Clone,
    {
        let mut entries: Vec<SnapshotEntry<E>> = self
            .heap
            .iter()
            .map(|e| SnapshotEntry {
                time: e.time,
                seq: e.seq,
                dead: self.dead.contains(&e.seq),
                event: e.event.clone(),
            })
            .collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        QueueSnapshot {
            entries,
            next_seq: self.next_seq,
            now: self.now,
            stats: self.stats,
        }
    }

    /// Rebuilds a queue from a [`QueueSnapshot`]. The result is
    /// behaviorally identical to the queue that produced the snapshot:
    /// same pop order, same `len()`, same cancel semantics for every
    /// outstanding handle (live, tombstoned, or delivered), and the same
    /// future stats evolution (tombstones re-enter the heap, so
    /// `skipped`/`compactions` accrue exactly as they would have).
    pub fn restore(snap: QueueSnapshot<E>) -> Self {
        let mut dead = std::collections::HashSet::new();
        let mut pending = std::collections::HashSet::new();
        let mut entries = Vec::with_capacity(snap.entries.len());
        for e in snap.entries {
            if e.dead {
                dead.insert(e.seq);
            } else {
                pending.insert(e.seq);
            }
            entries.push(Entry {
                time: e.time,
                seq: e.seq,
                event: e.event,
            });
        }
        EventQueue {
            heap: BinaryHeap::from(entries),
            dead,
            pending,
            next_seq: snap.next_seq,
            now: snap.now,
            stats: snap.stats,
        }
    }

    /// Reserves `n` consecutive sequence numbers and returns the first.
    ///
    /// The reserved band is *not* scheduled — later calls to
    /// [`EventQueue::schedule_at_seq`] fill individual slots. This is the
    /// fork-determinism primitive: a shared prefix run reserves a band up
    /// front, so every fork can inject its variant-specific events with
    /// exactly the `(time, seq)` coordinates the equivalent
    /// straight-through run would have used, leaving all subsequent seq
    /// assignments (and hence the entire event order) unchanged.
    pub fn reserve_seq_band(&mut self, n: u64) -> u64 {
        let base = self.next_seq;
        self.next_seq += n;
        base
    }

    /// Schedules `event` at `at` under an explicit sequence number from a
    /// band previously reserved with [`EventQueue::reserve_seq_band`].
    ///
    /// # Panics
    /// Panics if `seq` was never reserved (`seq >= next_seq`) or is
    /// already in use by a live or tombstoned entry — both indicate a
    /// bookkeeping bug in the caller, never a data-dependent condition.
    pub fn schedule_at_seq(&mut self, seq: u64, at: SimTime, event: E) -> EventHandle {
        assert!(seq < self.next_seq, "seq {seq} was never reserved");
        assert!(
            !self.pending.contains(&seq) && !self.dead.contains(&seq),
            "seq {seq} already scheduled"
        );
        let time = if at < self.now {
            self.stats.clamped += 1;
            self.now
        } else {
            at
        };
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        self.stats.scheduled += 1;
        EventHandle(seq)
    }

    fn skip_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.dead.remove(&top.seq) {
                self.heap.pop();
                self.stats.skipped += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_schedules_are_clamped() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "a");
        q.pop();
        q.schedule_at(SimTime::from_secs(1), "late");
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_secs(5));
        assert_eq!(q.stats().clamped, 1);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_at(SimTime::from_secs(1), "one");
        q.schedule_at(SimTime::from_secs(2), "two");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.pop().unwrap().event, "two");
        assert!(q.pop().is_none());
        assert_eq!(q.stats().cancelled, 1);
        assert_eq!(q.stats().skipped, 1);
    }

    #[test]
    fn cancel_null_and_unknown_handles() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle::NULL));
        let h = q.schedule_now(());
        q.pop();
        // Neither a delivered handle nor a never-issued one cancels.
        assert!(!q.cancel(h));
        assert!(!q.cancel(EventHandle(999)));
    }

    #[test]
    fn len_accounts_for_tombstones() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn schedule_now_fires_after_existing_same_instant_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, "a");
        q.schedule_now("b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
    }

    #[test]
    fn clear_resets_clock_keeps_stats() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(9), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.stats().scheduled, 2);
    }

    #[test]
    fn compaction_rebuilds_when_dead_exceeds_half() {
        let mut q = EventQueue::new();
        let handles: Vec<EventHandle> = (0..100u32)
            .map(|i| q.schedule_at(SimTime::from_secs(1 + i as u64), i))
            .collect();
        // Cancel 50: dead == half, not *exceeding* — no compaction yet.
        for h in &handles[..50] {
            assert!(q.cancel(*h));
        }
        assert_eq!(q.stats().compactions, 0);
        assert_eq!(q.len(), 50);
        // One more tips the balance.
        assert!(q.cancel(handles[50]));
        assert_eq!(q.stats().compactions, 1);
        assert_eq!(q.len(), 49, "len unchanged by compaction");
        // Delivery order and content are untouched; no skips were needed
        // because the tombstones are already gone.
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (51..100).collect::<Vec<_>>());
        assert_eq!(q.stats().skipped, 0);
        assert_eq!(q.stats().cancelled, 51);
    }

    #[test]
    fn cancel_of_delivered_event_is_a_noop() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        q.pop(); // delivers h1
                 // Cancelling a delivered handle is a no-op: no tombstone, no
                 // spurious compaction, no effect on len, however often retried.
        assert!(!q.cancel(h1));
        assert!(!q.cancel(h1));
        assert_eq!(q.stats().cancelled, 0);
        assert_eq!(q.stats().compactions, 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_stays_false_across_compactions() {
        let mut q = EventQueue::new();
        let handles: Vec<EventHandle> = (0..8u32)
            .map(|i| q.schedule_at(SimTime::from_secs(1 + i as u64), i))
            .collect();
        for h in &handles[..5] {
            assert!(q.cancel(*h)); // 5th cancel compacts (5*2 > 8)
        }
        assert_eq!(q.stats().compactions, 1);
        // Re-cancelling an already-cancelled handle after the compaction
        // must still report false and must not plant a phantom tombstone.
        assert!(!q.cancel(handles[0]));
        assert_eq!(q.stats().cancelled, 5, "no double count");
        assert_eq!(q.len(), 3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![5, 6, 7]);
        assert_eq!(q.len(), 0, "no underflow from phantom tombstones");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_if_at_drains_one_epoch_only() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        q.schedule_at(t1, 1u32);
        q.schedule_at(SimTime::from_secs(2), 3);
        let h = q.schedule_at(t1, 99);
        q.schedule_at(t1, 2);
        q.cancel(h);
        let t = q.peek_time().unwrap();
        assert_eq!(t, t1);
        let mut batch = Vec::new();
        while let Some(e) = q.pop_if_at(t) {
            batch.push(e.event);
            if e.event == 1 {
                // events scheduled for the epoch time mid-drain join the
                // batch in seq order
                q.schedule_at(t1, 10);
            }
        }
        assert_eq!(batch, vec![1, 2, 10], "seq order, tombstone skipped");
        assert_eq!(q.now(), t1);
        assert_eq!(q.pop_if_at(t1), None, "next event is a later epoch");
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop_if_at(SimTime::from_secs(9)), None, "empty queue");
    }

    /// Drives two queues through the same operation sequence, asserting
    /// identical observable behavior step by step.
    fn assert_equivalent(
        a: &mut EventQueue<u32>,
        b: &mut EventQueue<u32>,
        ops: impl IntoIterator<Item = Op>,
    ) {
        for op in ops {
            match op {
                Op::Schedule(t, v) => {
                    assert_eq!(a.schedule_at(t, v), b.schedule_at(t, v));
                }
                Op::Cancel(h) => assert_eq!(a.cancel(h), b.cancel(h)),
                Op::Pop => assert_eq!(a.pop(), b.pop()),
            }
            assert_eq!(a.len(), b.len());
            assert_eq!(a.now(), b.now());
            assert_eq!(a.stats(), b.stats());
        }
    }

    enum Op {
        Schedule(SimTime, u32),
        Cancel(EventHandle),
        Pop,
    }

    #[test]
    fn snapshot_restore_mid_compaction_pressure_preserves_bookkeeping() {
        // Regression (PR 9): the snapshot must carry tombstone and
        // pending-seq bookkeeping exactly. Build a queue sitting just
        // *below* the compaction threshold — maximal tombstone pressure —
        // and verify the restored queue matches the original on len(),
        // cancel semantics (live, tombstoned, and delivered handles), pop
        // order, and the stats evolution that the very next cancel (which
        // tips into compaction) produces.
        let mut q = EventQueue::new();
        let handles: Vec<EventHandle> = (0..20u32)
            .map(|i| q.schedule_at(SimTime::from_secs(1 + i as u64), i))
            .collect();
        q.pop(); // deliver #0 so a delivered handle exists
        for h in &handles[1..10] {
            assert!(q.cancel(*h)); // 9 tombstones over 19 entries: 9*2 ≤ 19
        }
        assert_eq!(q.stats().compactions, 0, "precondition: none yet");
        assert_eq!(q.len(), 10);

        let snap = q.snapshot();
        // Canonical: tombstones present and flagged, entries ordered.
        assert_eq!(snap.entries.len(), 19, "tombstones included");
        assert_eq!(snap.entries.iter().filter(|e| e.dead).count(), 9);
        assert!(snap
            .entries
            .windows(2)
            .all(|w| (w[0].time, w[0].seq) < (w[1].time, w[1].seq)));

        let mut r = EventQueue::restore(snap.clone());
        assert_eq!(r.len(), q.len());
        assert_eq!(r.now(), q.now());
        assert_eq!(r.stats(), q.stats());
        // Snapshot of the restored queue is identical (round-trip).
        assert_eq!(r.snapshot(), snap);

        // Identical behavior from here on, including the compaction that
        // the next cancel triggers on both.
        assert_equivalent(
            &mut q,
            &mut r,
            [
                Op::Cancel(handles[0]),  // delivered: false on both
                Op::Cancel(handles[5]),  // tombstoned: false on both
                Op::Cancel(handles[10]), // live: true, tips compaction
                Op::Pop,
                Op::Schedule(SimTime::from_secs(50), 777),
                Op::Pop,
                Op::Pop,
            ],
        );
        assert_eq!(q.stats().compactions, 1, "restored queue compacted too");
    }

    #[test]
    fn restored_queue_assigns_fresh_seqs_identically() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2);
        let mut r = EventQueue::restore(q.snapshot());
        // next_seq carried over: new handles collide on neither queue.
        assert_equivalent(
            &mut q,
            &mut r,
            [
                Op::Schedule(SimTime::from_secs(1), 3),
                Op::Pop,
                Op::Pop,
                Op::Pop,
            ],
        );
    }

    #[test]
    fn seq_band_injection_matches_straight_through_order() {
        // Straight-through: events scheduled in one go.
        let mut straight = EventQueue::new();
        let t = SimTime::from_secs(5);
        straight.schedule_at(t, 1u32); // seq 0
        straight.schedule_at(t, 2); // seq 1 (the "axis" event)
        straight.schedule_at(t, 3); // seq 2

        // Forked: the prefix reserves the axis slot, later filled in.
        let mut forked = EventQueue::new();
        forked.schedule_at(t, 1); // seq 0
        let base = forked.reserve_seq_band(1); // seq 1 reserved
        forked.schedule_at(t, 3); // seq 2
        forked.schedule_at_seq(base, t, 2); // axis event lands at seq 1

        let a: Vec<u32> = std::iter::from_fn(|| straight.pop().map(|e| e.event)).collect();
        let b: Vec<u32> = std::iter::from_fn(|| forked.pop().map(|e| e.event)).collect();
        assert_eq!(a, b, "band injection reproduces straight-through order");
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    fn seq_band_survives_snapshot() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 1u32);
        let base = q.reserve_seq_band(4);
        let mut r = EventQueue::restore(q.snapshot());
        // The band is still reserved after restore (next_seq carried).
        let h = r.schedule_at_seq(base + 2, SimTime::from_secs(3), 9);
        assert_eq!(h.raw(), base + 2);
        assert_eq!(r.pop().unwrap().event, 1);
        assert_eq!(r.pop().unwrap().event, 9);
        // Fresh scheduling resumes after the band on both queues.
        assert_eq!(q.schedule_at(SimTime::from_secs(9), 0).raw(), base + 4);
        assert_eq!(r.schedule_at(SimTime::from_secs(9), 0).raw(), base + 4);
    }

    #[test]
    #[should_panic(expected = "never reserved")]
    fn schedule_at_seq_rejects_unreserved() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at_seq(3, SimTime::from_secs(1), 1);
    }

    #[test]
    #[should_panic(expected = "already scheduled")]
    fn schedule_at_seq_rejects_reuse() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at_seq(0, SimTime::from_secs(1), 2);
    }

    #[test]
    fn interleaved_schedule_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 10);
        q.schedule_at(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule_at(SimTime::from_secs(5), 5);
        q.schedule_in(SimDuration::from_secs(2), 3);
        assert_eq!(q.pop().unwrap().event, 3); // t=3
        assert_eq!(q.pop().unwrap().event, 5); // t=5
        assert_eq!(q.pop().unwrap().event, 10); // t=10
    }
}
