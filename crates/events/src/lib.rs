//! # horse-events
//!
//! The discrete-event core of Horse: the paper's data plane is driven by
//! "a temporally ordered set of inputs for the topology" — this crate
//! provides that ordering.
//!
//! * [`queue`] — the future event list: a binary-heap priority queue keyed
//!   by `(SimTime, sequence)` so that events at equal timestamps pop in
//!   scheduling (FIFO) order, making every run deterministic.
//! * [`engine`] — a small driver that repeatedly pops events, advances the
//!   clock and hands them to a handler, with run-until-time /
//!   run-until-empty / single-step modes and wall-clock accounting.
//!
//! The engine is intentionally synchronous and single-threaded: simulation
//! is CPU-bound, so (per the networking guides) an async runtime buys
//! nothing here. Parallelism, where used, is across *replications* (see the
//! bench crate), never inside one simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;

pub use engine::{EngineStats, EventLoop, HandlerOutcome};
pub use queue::{EventHandle, EventQueue, ScheduledEvent};
