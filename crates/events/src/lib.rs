//! # horse-events
//!
//! The discrete-event core of Horse: the paper's data plane is driven by
//! "a temporally ordered set of inputs for the topology" — this crate
//! provides that ordering.
//!
//! * [`queue`] — the future event list: a binary-heap priority queue keyed
//!   by `(SimTime, sequence)` so that events at equal timestamps pop in
//!   scheduling (FIFO) order, making every run deterministic. The
//!   [`EventQueue::pop_if_at`](queue::EventQueue::pop_if_at) primitive
//!   drains all events sharing one timestamp as a single **epoch batch**
//!   (still in seq order), which is what lets the simulator run its
//!   allocator once per epoch instead of once per event.
//! * [`engine`] — a small driver that repeatedly pops events, advances the
//!   clock and hands them to a handler, with run-until-time /
//!   run-until-empty / single-step modes and wall-clock accounting.
//!
//! The event loop itself is synchronous and single-threaded: simulation is
//! CPU-bound, so an async runtime buys nothing here. Parallelism lives at
//! two levels *around* the loop instead: across replications (the lab
//! runner) and, within one simulation, across the disjoint allocation
//! components of an epoch (the data plane's component-parallel solve) —
//! both engineered to be bit-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;

pub use engine::{EngineStats, EventLoop, HandlerOutcome};
pub use queue::{
    EventHandle, EventQueue, QueueSnapshot, QueueStats, ScheduledEvent, SnapshotEntry,
};
