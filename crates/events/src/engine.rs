//! The event-loop driver.
//!
//! [`EventLoop`] owns an [`EventQueue`] and repeatedly dispatches events to
//! a handler closure. The handler may schedule or cancel further events
//! through the mutable queue reference it receives, and can stop the run
//! early by returning [`HandlerOutcome::Stop`].
//!
//! Wall-clock time and event counts are tracked in [`EngineStats`] — these
//! are the raw measurements behind the paper's "simulation time" axis
//! (experiments E1/E2/E5).

use crate::queue::{EventQueue, ScheduledEvent};
use horse_types::SimTime;
use std::time::Instant;

/// What the handler wants the loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerOutcome {
    /// Keep running.
    Continue,
    /// Stop after this event (graceful early termination).
    Stop,
}

/// Execution statistics for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Events dispatched to the handler.
    pub events_processed: u64,
    /// Wall-clock seconds spent inside `run*` calls.
    pub wall_seconds: f64,
    /// Final simulated time.
    pub sim_time: SimTime,
}

impl EngineStats {
    /// Events per wall-clock second (0 when no time elapsed).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events_processed as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// A single-threaded deterministic event loop.
///
/// ```
/// use horse_events::{EventLoop, HandlerOutcome};
/// use horse_types::{SimDuration, SimTime};
///
/// // Count down: each event schedules the next one until zero.
/// let mut lp: EventLoop<u32> = EventLoop::new();
/// lp.queue_mut().schedule_at(SimTime::ZERO, 3);
/// let mut seen = vec![];
/// lp.run(|ev, q| {
///     seen.push(ev.event);
///     if ev.event > 0 {
///         q.schedule_in(SimDuration::from_secs(1), ev.event - 1);
///     }
///     HandlerOutcome::Continue
/// });
/// assert_eq!(seen, vec![3, 2, 1, 0]);
/// assert_eq!(lp.now(), SimTime::from_secs(3));
/// ```
pub struct EventLoop<E> {
    queue: EventQueue<E>,
    stats: EngineStats,
}

impl<E> Default for EventLoop<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventLoop<E> {
    /// Creates an empty loop at time zero.
    pub fn new() -> Self {
        EventLoop {
            queue: EventQueue::new(),
            stats: EngineStats::default(),
        }
    }

    /// Immutable access to the queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Mutable access to the queue (for seeding initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.sim_time = self.queue.now();
        s
    }

    /// Runs until the queue drains or the handler stops the loop.
    pub fn run<F>(&mut self, mut handler: F) -> EngineStats
    where
        F: FnMut(ScheduledEvent<E>, &mut EventQueue<E>) -> HandlerOutcome,
    {
        self.run_until(SimTime::MAX, &mut handler)
    }

    /// Runs until the queue drains, the handler stops the loop, or the next
    /// event would fire strictly after `deadline` (events *at* the deadline
    /// are processed).
    pub fn run_until<F>(&mut self, deadline: SimTime, handler: &mut F) -> EngineStats
    where
        F: FnMut(ScheduledEvent<E>, &mut EventQueue<E>) -> HandlerOutcome,
    {
        let start = Instant::now();
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.stats.events_processed += 1;
            if handler(ev, &mut self.queue) == HandlerOutcome::Stop {
                break;
            }
        }
        self.stats.wall_seconds += start.elapsed().as_secs_f64();
        self.stats()
    }

    /// Processes at most one event; returns `false` when the queue is empty.
    pub fn step<F>(&mut self, handler: &mut F) -> bool
    where
        F: FnMut(ScheduledEvent<E>, &mut EventQueue<E>) -> HandlerOutcome,
    {
        match self.queue.pop() {
            Some(ev) => {
                self.stats.events_processed += 1;
                handler(ev, &mut self.queue);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_types::SimDuration;

    #[test]
    fn run_drains_queue() {
        let mut lp: EventLoop<u32> = EventLoop::new();
        for i in 0..10 {
            lp.queue_mut().schedule_at(SimTime::from_secs(i as u64), i);
        }
        let stats = lp.run(|_, _| HandlerOutcome::Continue);
        assert_eq!(stats.events_processed, 10);
        assert_eq!(stats.sim_time, SimTime::from_secs(9));
        assert!(lp.queue().is_empty());
    }

    #[test]
    fn handler_can_stop_early() {
        let mut lp: EventLoop<u32> = EventLoop::new();
        for i in 0..10 {
            lp.queue_mut().schedule_at(SimTime::from_secs(i as u64), i);
        }
        let stats = lp.run(|ev, _| {
            if ev.event == 4 {
                HandlerOutcome::Stop
            } else {
                HandlerOutcome::Continue
            }
        });
        assert_eq!(stats.events_processed, 5);
        assert_eq!(lp.queue().len(), 5);
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut lp: EventLoop<u32> = EventLoop::new();
        for i in 1..=10u64 {
            lp.queue_mut().schedule_at(SimTime::from_secs(i), i as u32);
        }
        let stats = lp.run_until(SimTime::from_secs(5), &mut |_, _| HandlerOutcome::Continue);
        assert_eq!(stats.events_processed, 5);
        // remaining events stay queued; clock does not pass the deadline
        assert_eq!(lp.now(), SimTime::from_secs(5));
        assert_eq!(lp.queue().len(), 5);
    }

    #[test]
    fn cascading_events_run_to_completion() {
        let mut lp: EventLoop<u32> = EventLoop::new();
        lp.queue_mut().schedule_at(SimTime::ZERO, 100);
        let stats = lp.run(|ev, q| {
            if ev.event > 0 {
                q.schedule_in(SimDuration::from_millis(1), ev.event - 1);
            }
            HandlerOutcome::Continue
        });
        assert_eq!(stats.events_processed, 101);
        assert_eq!(lp.now(), SimTime::from_millis(100));
    }

    #[test]
    fn step_processes_one() {
        let mut lp: EventLoop<u32> = EventLoop::new();
        lp.queue_mut().schedule_at(SimTime::from_secs(1), 1);
        lp.queue_mut().schedule_at(SimTime::from_secs(2), 2);
        let mut h = |_: ScheduledEvent<u32>, _: &mut EventQueue<u32>| HandlerOutcome::Continue;
        assert!(lp.step(&mut h));
        assert_eq!(lp.now(), SimTime::from_secs(1));
        assert!(lp.step(&mut h));
        assert!(!lp.step(&mut h));
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut lp: EventLoop<u32> = EventLoop::new();
        lp.queue_mut().schedule_at(SimTime::from_secs(1), 1);
        lp.run(|_, _| HandlerOutcome::Continue);
        lp.queue_mut().schedule_at(SimTime::from_secs(2), 2);
        let stats = lp.run(|_, _| HandlerOutcome::Continue);
        assert_eq!(stats.events_processed, 2);
    }
}
