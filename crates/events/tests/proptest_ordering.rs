//! Property tests for the future event list: total ordering, FIFO ties,
//! cancellation soundness — the invariants every simulation result rests
//! on.

use horse_events::EventQueue;
use horse_types::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pops come out sorted by (time, insertion order), whatever the
    /// insertion order was.
    #[test]
    fn pops_are_totally_ordered(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(e) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(e.time >= lt, "time went backwards");
                if e.time == lt {
                    prop_assert!(e.event > li, "FIFO violated for equal times");
                }
            }
            last = Some((e.time, e.event));
        }
    }

    /// Cancelled events never surface; everything else does exactly once.
    #[test]
    fn cancellation_is_sound(
        times in prop::collection::vec(0u64..1_000, 1..150),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..150),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.schedule_at(SimTime::from_nanos(*t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for ((i, h), &kill) in handles.iter().zip(cancel_mask.iter().cycle()) {
            if kill {
                prop_assert!(q.cancel(*h));
                cancelled.insert(*i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some(e) = q.pop() {
            prop_assert!(!cancelled.contains(&e.event), "cancelled event delivered");
            prop_assert!(seen.insert(e.event), "event delivered twice");
        }
        prop_assert_eq!(seen.len() + cancelled.len(), times.len());
    }

    /// len() always equals the number of still-deliverable events.
    #[test]
    fn len_is_exact(times in prop::collection::vec(0u64..100, 1..100), kill_every in 2usize..5) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .map(|t| q.schedule_at(SimTime::from_nanos(*t), ()))
            .collect();
        for h in handles.iter().step_by(kill_every) {
            q.cancel(*h);
        }
        let expected = q.len();
        let mut count = 0;
        while q.pop().is_some() {
            count += 1;
        }
        prop_assert_eq!(count, expected);
    }
}
