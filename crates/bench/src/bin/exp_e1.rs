//! E1 — Simulation time vs network scale (flow-level vs packet-level).
//!
//! Table 1a: fluid-plane wall-clock / events / speedup-over-realtime as
//! the IXP grows from 50 to 800 members at fixed per-member load.
//! Table 1b: fluid vs packet on the sizes the packet plane can finish in
//! reasonable time (the gap *is* the result).
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_e1`

use horse::compare::compare_on_ixp;
use horse::prelude::*;
use horse_bench::{fast_config, fmt_wall, ixp_scenario, lb_policy, run_fluid};

fn main() {
    let horizon = SimTime::from_secs(10);
    println!("== E1a: fluid plane, scale sweep (10 simulated seconds, 40 Mbps/member) ==");
    println!("members |  nodes | flows adm. |   events |  wall     | ev/s    | sim/wall");
    println!("--------+--------+------------+----------+-----------+---------+---------");
    for members in [50usize, 100, 200, 400, 800] {
        let s = ixp_scenario(members, 1.0, lb_policy(), horizon, 1);
        let nodes = s.topology.node_count();
        let r = run_fluid(s, fast_config());
        println!(
            "{members:>7} | {nodes:>6} | {:>10} | {:>8} | {:>9} | {:>7.0} | {:>7.1}x",
            r.flows_admitted,
            r.events,
            fmt_wall(r.wall_seconds),
            r.events_per_sec(),
            r.speedup(),
        );
    }

    println!();
    println!("== E1b: fluid vs packet on identical workloads (5 simulated seconds) ==");
    println!("members | flows | fluid wall | packet wall | speedup | event ratio");
    println!("--------+-------+------------+-------------+---------+------------");
    for members in [8usize, 16, 32, 64] {
        let flows = members * 8;
        let rep = compare_on_ixp(members, flows, SimTime::from_secs(5), 1);
        println!(
            "{members:>7} | {flows:>5} | {:>10} | {:>11} | {:>6.1}x | {:>10.1}x",
            fmt_wall(rep.fluid_wall),
            fmt_wall(rep.packet_wall),
            rep.speedup(),
            rep.event_ratio(),
        );
    }
}
