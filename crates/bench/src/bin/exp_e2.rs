//! E2 — Simulation time vs traffic load.
//!
//! Fixed 200-member IXP; the offered load scales ×{0.25, 0.5, 1, 2, 4}.
//! Flow-level cost grows with the *flow event rate* (arrivals ×
//! rate-change cascades), not with packets — the table shows wall-clock
//! tracking the admitted-flow count roughly linearly.
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_e2`

use horse::prelude::*;
use horse_bench::{fast_config, fmt_wall, ixp_scenario, lb_policy, run_fluid};

fn main() {
    let horizon = SimTime::from_secs(10);
    println!("== E2: load sweep at 200 members (10 simulated seconds) ==");
    println!("load    | flows adm. |   events |  wall     | ev/s     | realloc flows");
    println!("--------+------------+----------+-----------+----------+--------------");
    for factor in [0.25f64, 0.5, 1.0, 2.0, 4.0] {
        let s = ixp_scenario(200, factor, lb_policy(), horizon, 2);
        let r = run_fluid(s, fast_config());
        println!(
            "x{factor:<5.2} | {:>10} | {:>8} | {:>9} | {:>8.0} | {:>12}",
            r.flows_admitted,
            r.events,
            fmt_wall(r.wall_seconds),
            r.events_per_sec(),
            r.realloc_flows_touched,
        );
    }
}
