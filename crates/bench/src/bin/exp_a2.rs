//! A2 (ablation) — control-channel latency vs flow completion time.
//!
//! The decoupled control plane is the abstraction the paper insists must
//! stay visible: with a reactive controller (MAC learning), a flow to a
//! not-yet-learned destination pays controller round trips before its
//! first byte moves. Every flow here targets a *fresh* destination, so
//! every flow pays the setup; sweeping the one-way latency shows the
//! median FCT absorbing ≥2× the latency, while a proactive configuration
//! is immune.
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_a2`

use horse::dataplane::DemandModel;
use horse::prelude::*;

const TRANSFERS: usize = 32;

fn run_with(policy: PolicySpec, latency: SimDuration) -> (f64, u64) {
    // member 0 sends one 1 MiB transfer to each of 32 distinct members —
    // no destination is ever re-used, so reactive setup cannot amortize.
    let fabric = builders::star(TRANSFERS + 1, Rate::gbps(1.0));
    let mut scenario = Scenario::bare(fabric.topology.clone(), SimTime::from_secs(40));
    scenario.members = fabric.members.clone();
    scenario.policy = policy;
    for i in 0..TRANSFERS {
        let spec = scenario
            .flow_between(
                fabric.members[0],
                fabric.members[i + 1],
                AppClass::Https,
                40_000 + i as u16,
                Some(ByteSize::mib(1)),
                DemandModel::Greedy,
            )
            .expect("members exist");
        scenario
            .explicit_flows
            .push((SimTime::from_millis(500 + 100 * i as u64), spec));
    }
    let cfg = SimConfig::default().with_ctrl_latency(latency);
    let mut sim = Simulation::new(scenario, cfg).expect("valid scenario");
    let r = sim.run();
    (r.fct.p50, r.flow_ins)
}

fn main() {
    println!("== A2: controller latency vs median FCT (1 MiB transfers, fresh destinations) ==");
    println!("ctrl latency | reactive FCT p50 | flow-ins | proactive FCT p50");
    println!("-------------+------------------+----------+------------------");
    for lat_us in [0u64, 100, 1_000, 10_000] {
        let lat = SimDuration::from_micros(lat_us);
        let (reactive_fct, flow_ins) =
            run_with(PolicySpec::new().with(PolicyRule::MacLearning), lat);
        let (proactive_fct, _) = run_with(PolicySpec::new().with(PolicyRule::MacForwarding), lat);
        println!(
            "{:>9} us | {:>15.4}s | {:>8} | {:>15.4}s",
            lat_us, reactive_fct, flow_ins, proactive_fct,
        );
    }
    println!("\n(reactive FCT absorbs ≥2x the latency per setup; proactive stays flat)");
}
