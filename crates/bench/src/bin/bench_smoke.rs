//! Quick-mode bench smoke: runs the sweep + scale benches (plus a hybrid
//! co-simulation point) in a fast configuration and writes a
//! machine-readable `BENCH_pr<N>.json` so the repository's bench
//! trajectory has recorded data points (runner throughput, reallocate
//! ns/op, events/sec, hybrid event cost).
//!
//! Wall-clock numbers vary with the host; the point is the *trajectory*
//! within one machine (CI keeps the artifact per run) plus the
//! deterministic counters alongside them.
//!
//! `--baseline <file>` turns the run into a **regression gate**: the
//! fresh point is compared against the given committed `BENCH_*.json`
//! and the process exits non-zero when `realloc_ns_per_op` or
//! `events_per_sec` regress by more than 25% (quick-mode noise
//! tolerance) on any matched scale point or on runner throughput.
//!
//! Usage: `bench_smoke [--pr N] [--out PATH] [--baseline BENCH_prM.json]`

use horse::prelude::*;
use horse_bench::{
    fast_config, ixp_scenario, lb_policy, million_flow_point, pkt_burst_scenario, wave_ixp_scenario,
};
use serde::{Number, Value};
use std::time::Instant;

/// Regression tolerance: quick-mode numbers on shared CI runners are
/// noisy; only flag changes beyond this factor.
const TOLERANCE: f64 = 0.25;

/// The epoch-batching acceptance bar: on the 400-member IXP wave
/// fabric, the batched loop (+ 4 engine threads) must beat the per-event
/// serial cadence by at least this factor in useful events/sec. Asserted
/// on every run, so CI fails if the win ever erodes.
const WAVE_SPEEDUP_FLOOR: f64 = 1.5;

/// Full tracing (metrics + spans + journal) must retain at least this
/// fraction of untraced events/sec on the 100-member point (measured
/// ~0.90 on a contended single-core runner; the floor leaves noise
/// headroom). Tracing *disabled* is gated separately: the default path
/// carries no tracer, so the `--baseline` comparison against the
/// committed bench point IS the disabled-overhead regression check.
const TRACE_EPS_FLOOR: f64 = 0.85;

/// Million-flow superlinearity bound: per-flow per-epoch allocator cost
/// at ~10^6 flows may be at most this factor of the cost at ~1.3·10^5
/// flows (an 8× population jump). Flat means the per-epoch cost is
/// linear in flows touched; this is asserted on every run.
const MILLION_FLOW_RATIO_CEIL: f64 = 3.0;

/// Prefix-shared forking acceptance bar: on a 3-variant what-if sweep
/// diverging at 93% of the horizon, forked execution (shared prefix
/// simulated once, checkpointed, forked per variant) must beat naive
/// full re-simulation by at least this wall-clock factor — while
/// producing byte-identical reports. Asserted on every run (measured
/// ~1.9× on a contended single-core runner; the floor leaves noise
/// headroom).
const FORK_SPEEDUP_FLOOR: f64 = 1.5;

/// Packet-burst acceptance bar: on the loss-free WAN point the batched
/// packet plane (GSO-style bursts + decision cache, the defaults) must
/// model at least this many times more packets per wall-second than the
/// per-packet oracle (`pkt_burst = 1`, cache off). Asserted on every run
/// (measured ~20× on a contended single-core runner; the floor leaves
/// generous headroom).
const PKT_BURST_SPEEDUP_FLOOR: f64 = 5.0;

/// Fidelity bar riding along with the speedup: mean foreground FCT
/// deviation of the batched plane against the per-packet oracle on the
/// same loss-free point. Batching skews delivery by at most
/// `(cap − 1)` serialization slots per round — parts-per-thousand of
/// every RTT on 40G access behind 50/250 µs propagation.
const PKT_BURST_FCT_DEV_CEIL: f64 = 0.01;

fn num_f(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

fn num_u(v: u64) -> Value {
    Value::Number(Number::UInt(v))
}

/// Timed single-scenario run: returns (results, wall seconds).
fn timed_run(members: usize, seed: u64, packet_foreground: usize) -> (SimResults, f64) {
    let mut s = ixp_scenario(members, 1.0, lb_policy(), SimTime::from_secs(2), seed);
    s.packet_foreground = packet_foreground;
    let mut sim = Simulation::new(s, fast_config()).expect("valid scenario");
    let t = Instant::now();
    let r = sim.run();
    (r, t.elapsed().as_secs_f64())
}

/// One warmup run, then best-of-3 by wall time (quick-mode noise
/// guard) — the shared timing harness of every point in this file.
fn best_of<R>(mut run: impl FnMut() -> (R, f64)) -> (R, f64) {
    let _ = run(); // warmup
    let (mut best_r, mut best_w) = run();
    for _ in 0..2 {
        let (r, w) = run();
        if w < best_w {
            best_w = w;
            best_r = r;
        }
    }
    (best_r, best_w)
}

/// [`best_of`] over the standard IXP scenario.
fn best_of_3(members: usize, packet_foreground: usize) -> (SimResults, f64) {
    best_of(|| timed_run(members, 1, packet_foreground))
}

fn get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    serde::map_get(v.as_map()?, key)
}

fn get_f(v: &Value, key: &str) -> Option<f64> {
    get(v, key).and_then(|x| x.as_number()).map(|n| n.as_f64())
}

/// One gate check: `fresh` may be at most `tolerance` worse than `base`.
/// `higher_is_better` selects the direction. Returns an error line on
/// regression.
fn check(metric: &str, base: f64, fresh: f64, higher_is_better: bool) -> Option<String> {
    if base <= 0.0 {
        return None; // nothing meaningful to compare against
    }
    let (bad, bound) = if higher_is_better {
        (fresh < base * (1.0 - TOLERANCE), base * (1.0 - TOLERANCE))
    } else {
        (fresh > base * (1.0 + TOLERANCE), base * (1.0 + TOLERANCE))
    };
    bad.then(|| {
        format!(
            "REGRESSION {metric}: fresh {fresh:.1} vs baseline {base:.1} \
             (allowed {} {bound:.1})",
            if higher_is_better { ">=" } else { "<=" },
        )
    })
}

/// Compares the fresh document against a committed baseline; returns
/// every regression found.
fn gate(baseline: &Value, fresh: &Value) -> Vec<String> {
    let mut failures = Vec::new();
    // Runner throughput: events/sec must not collapse.
    if let (Some(b), Some(f)) = (
        get(baseline, "runner_throughput").and_then(|v| get_f(v, "events_per_sec")),
        get(fresh, "runner_throughput").and_then(|v| get_f(v, "events_per_sec")),
    ) {
        failures.extend(check("runner events_per_sec", b, f, true));
    }
    // Scale points, matched by member count.
    let empty: [Value; 0] = [];
    let b_scale = get(baseline, "scale")
        .and_then(|v| v.as_seq())
        .unwrap_or(&empty);
    let f_scale = get(fresh, "scale")
        .and_then(|v| v.as_seq())
        .unwrap_or(&empty);
    for b in b_scale {
        let Some(members) = get(b, "members").and_then(|v| v.as_number()) else {
            continue;
        };
        let members = members.as_f64();
        let Some(f) = f_scale
            .iter()
            .find(|f| get_f(f, "members") == Some(members))
        else {
            continue;
        };
        for (metric, higher_is_better) in [("events_per_sec", true), ("realloc_ns_per_op", false)] {
            if let (Some(bv), Some(fv)) = (get_f(b, metric), get_f(f, metric)) {
                failures.extend(check(
                    &format!("scale[{members}].{metric}"),
                    bv,
                    fv,
                    higher_is_better,
                ));
            }
        }
        // Deterministic counters are host-independent: drift means the
        // engine's behavior changed and the committed point should be
        // refreshed in the same PR. Noted, not gated — the wall metrics
        // above are the gate the CI job fails on.
        for counter in ["events", "realloc_runs"] {
            if let (Some(bv), Some(fv)) = (get_f(b, counter), get_f(f, counter)) {
                if bv != fv {
                    println!(
                        "note: scale[{members}].{counter} changed {bv} -> {fv} \
                         (deterministic counter; refresh the committed baseline if intended)"
                    );
                }
            }
        }
    }
    // Epoch-wave point (present from PR 5 on): the batched side's
    // throughput and the batched-vs-serial speedup must not collapse.
    if let (Some(b), Some(f)) = (get(baseline, "epoch_waves"), get(fresh, "epoch_waves")) {
        if let (Some(bv), Some(fv)) = (
            get(b, "batched_t4").and_then(|v| get_f(v, "useful_events_per_sec")),
            get(f, "batched_t4").and_then(|v| get_f(v, "useful_events_per_sec")),
        ) {
            failures.extend(check(
                "epoch_waves.batched_t4.useful_events_per_sec",
                bv,
                fv,
                true,
            ));
        }
        if let (Some(bv), Some(fv)) = (get_f(b, "flows"), get_f(f, "flows")) {
            if bv != fv {
                println!(
                    "note: epoch_waves.flows changed {bv} -> {fv} \
                     (deterministic counter; refresh the committed baseline if intended)"
                );
            }
        }
    }
    // Fat-tree (PR 4 on) and chaos-flaps (PR 7 on) points: same wall
    // metrics as the scale points; skipped silently against older
    // baselines.
    for point in ["fat_tree", "chaos_flaps"] {
        let (Some(b), Some(f)) = (get(baseline, point), get(fresh, point)) else {
            continue;
        };
        for (metric, higher_is_better) in [("events_per_sec", true), ("realloc_ns_per_op", false)] {
            if let (Some(bv), Some(fv)) = (get_f(b, metric), get_f(f, metric)) {
                failures.extend(check(
                    &format!("{point}.{metric}"),
                    bv,
                    fv,
                    higher_is_better,
                ));
            }
        }
        for counter in [
            "events",
            "realloc_runs",
            "cable_downs",
            "flows_rerouted",
            "flows_stranded",
        ] {
            if let (Some(bv), Some(fv)) = (get_f(b, counter), get_f(f, counter)) {
                if bv != fv {
                    println!(
                        "note: {point}.{counter} changed {bv} -> {fv} \
                         (deterministic counter; refresh the committed baseline if intended)"
                    );
                }
            }
        }
    }
    // Million-flow point (PR 8 on): per-flow per-epoch churn cost on the
    // large side is the scaling headline; gated like the other wall
    // metrics. Skipped silently against older baselines.
    if let (Some(b), Some(f)) = (get(baseline, "million_flow"), get(fresh, "million_flow")) {
        if let (Some(bv), Some(fv)) = (
            get(b, "large").and_then(|v| get_f(v, "churn_ns_per_flow")),
            get(f, "large").and_then(|v| get_f(v, "churn_ns_per_flow")),
        ) {
            failures.extend(check("million_flow.large.churn_ns_per_flow", bv, fv, false));
        }
        for side in ["small", "large"] {
            for counter in ["flows", "macro_vars", "warm_hits", "cold_solves"] {
                if let (Some(bv), Some(fv)) = (
                    get(b, side).and_then(|v| get_f(v, counter)),
                    get(f, side).and_then(|v| get_f(v, counter)),
                ) {
                    if bv != fv {
                        println!(
                            "note: million_flow.{side}.{counter} changed {bv} -> {fv} \
                             (deterministic counter; refresh the committed baseline if intended)"
                        );
                    }
                }
            }
        }
    }
    // Fork-sweep point (PR 9 on): the prefix-sharing wall speedup must
    // not collapse (the hard 1.5× floor is asserted on every run; this
    // gate additionally catches slow erosion against the committed
    // point). Deterministic prefix counters noted like the others.
    if let (Some(b), Some(f)) = (get(baseline, "fork_sweep"), get(fresh, "fork_sweep")) {
        if let (Some(bv), Some(fv)) = (get_f(b, "speedup_wall"), get_f(f, "speedup_wall")) {
            failures.extend(check("fork_sweep.speedup_wall", bv, fv, true));
        }
        for counter in ["prefix_events", "prefix_events_saved", "variants"] {
            if let (Some(bv), Some(fv)) = (get_f(b, counter), get_f(f, counter)) {
                if bv != fv {
                    println!(
                        "note: fork_sweep.{counter} changed {bv} -> {fv} \
                         (deterministic counter; refresh the committed baseline if intended)"
                    );
                }
            }
        }
    }
    // Packet-burst point (PR 10 on): the batched-vs-oracle packet
    // throughput speedup must not erode (the hard 5× floor is asserted
    // on every run; this gate catches slow decay against the committed
    // point). Deterministic packet/burst/cache counters noted like the
    // others.
    if let (Some(b), Some(f)) = (get(baseline, "pkt_burst"), get(fresh, "pkt_burst")) {
        if let (Some(bv), Some(fv)) = (
            get_f(b, "speedup_pkt_events"),
            get_f(f, "speedup_pkt_events"),
        ) {
            failures.extend(check("pkt_burst.speedup_pkt_events", bv, fv, true));
        }
        if let (Some(bv), Some(fv)) = (
            get(b, "batched").and_then(|v| get_f(v, "pkt_events_per_sec")),
            get(f, "batched").and_then(|v| get_f(v, "pkt_events_per_sec")),
        ) {
            failures.extend(check("pkt_burst.batched.pkt_events_per_sec", bv, fv, true));
        }
        for counter in ["bursts_formed", "cache_hits", "cache_misses"] {
            if let (Some(bv), Some(fv)) = (get_f(b, counter), get_f(f, counter)) {
                if bv != fv {
                    println!(
                        "note: pkt_burst.{counter} changed {bv} -> {fv} \
                         (deterministic counter; refresh the committed baseline if intended)"
                    );
                }
            }
        }
        if let (Some(bv), Some(fv)) = (
            get(b, "batched").and_then(|v| get_f(v, "tx_packets")),
            get(f, "batched").and_then(|v| get_f(v, "tx_packets")),
        ) {
            if bv != fv {
                println!(
                    "note: pkt_burst.batched.tx_packets changed {bv} -> {fv} \
                     (deterministic counter; refresh the committed baseline if intended)"
                );
            }
        }
    }
    failures
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut pr: u64 = 0;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = Some(args.next().expect("--out takes a path")),
            "--pr" => {
                pr = args
                    .next()
                    .expect("--pr takes a number")
                    .parse()
                    .expect("--pr takes a number")
            }
            "--baseline" => baseline_path = Some(args.next().expect("--baseline takes a path")),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_smoke [--pr N] [--out PATH] [--baseline BENCH_prM.json]");
                std::process::exit(2);
            }
        }
    }
    let out_path = out_path.unwrap_or_else(|| format!("BENCH_pr{pr}.json"));

    // 1. Runner throughput: the ctrl_latency example sweep in quick mode
    //    (the same spec CI's acceptance step compares across threads).
    let spec = SweepSpec::from_toml(
        r#"
        name = "smoke"
        replicates = 2
        [scenario]
        kind = "ixp"
        members = 25
        horizon_secs = 1.0
        [[scenario.policies]]
        type = "mac_learning"
        [axes]
        ctrl_latency_us = [0, 1000]
        "#,
    )
    .expect("smoke spec parses");
    let report = run_sweep(&spec, 2).expect("smoke sweep runs");
    let sweep_events: u64 = report.runs.iter().map(|r| r.metrics.events).sum();
    let runner = Value::Map(vec![
        ("runs".into(), num_u(report.runs.len() as u64)),
        ("threads".into(), num_u(report.threads as u64)),
        ("wall_seconds".into(), num_f(report.campaign_wall_seconds)),
        (
            "runs_per_sec".into(),
            num_f(report.runs.len() as f64 / report.campaign_wall_seconds.max(1e-9)),
        ),
        (
            "events_per_sec".into(),
            num_f(sweep_events as f64 / report.campaign_wall_seconds.max(1e-9)),
        ),
    ]);

    // 2. Scale points (benches/scale.rs in quick mode): wall per scenario,
    //    events/sec, and reallocate ns/op derived from the engine's own
    //    allocator-run counter.
    let mut scale_points = Vec::new();
    for members in [25usize, 50, 100, 200] {
        let (best_r, best_w) = best_of_3(members, 0);
        scale_points.push(Value::Map(vec![
            ("members".into(), num_u(members as u64)),
            ("wall_ms".into(), num_f(best_w * 1e3)),
            ("events".into(), num_u(best_r.events)),
            (
                "events_per_sec".into(),
                num_f(best_r.events as f64 / best_w.max(1e-9)),
            ),
            ("realloc_runs".into(), num_u(best_r.realloc_runs)),
            (
                "realloc_ns_per_op".into(),
                // Upper bound: whole-run wall over allocator invocations.
                num_f(best_w * 1e9 / best_r.realloc_runs.max(1) as f64),
            ),
            (
                "realloc_flows_touched".into(),
                num_u(best_r.realloc_flows_touched),
            ),
        ]));
    }

    // 3. Fat-tree point: a k=8 fat-tree (80 switches, 128 hosts,
    //    16 equal-cost inter-pod paths) under gravity traffic with ECMP
    //    groups — the generated-topology cost trajectory: PathDb build
    //    over a 3-tier Clos plus allocation over long multipath routes.
    let fat_tree_point = {
        let run = || {
            let mut params = FabricScenarioParams::default();
            params.generator.kind = TopologyKind::FatTree;
            params.generator.fat_tree_k = 8;
            params.horizon = SimTime::from_secs(1);
            params.seed = 1;
            let scenario = Scenario::fabric(&params).expect("fat-tree builds");
            let mut sim = Simulation::new(scenario, fast_config()).expect("valid scenario");
            let t = Instant::now();
            let r = sim.run();
            (r, t.elapsed().as_secs_f64())
        };
        let (best_r, best_w) = best_of(run);
        Value::Map(vec![
            ("kind".into(), Value::Str("fat_tree".into())),
            ("k".into(), num_u(8)),
            ("hosts".into(), num_u(128)),
            ("switches".into(), num_u(80)),
            ("wall_ms".into(), num_f(best_w * 1e3)),
            ("events".into(), num_u(best_r.events)),
            (
                "events_per_sec".into(),
                num_f(best_r.events as f64 / best_w.max(1e-9)),
            ),
            ("realloc_runs".into(), num_u(best_r.realloc_runs)),
            (
                "realloc_ns_per_op".into(),
                num_f(best_w * 1e9 / best_r.realloc_runs.max(1) as f64),
            ),
        ])
    };

    // 4. Chaos point: the same k=8 fat-tree under a violent seeded flap
    //    process plus one switch crash — the fault-injection cost
    //    trajectory: route kills, controller repairs and lenient
    //    re-admissions layered on top of the gravity load. The
    //    deterministic chaos counters ride along so a behavior change in
    //    the failure model is visible next to its wall cost.
    let chaos_point = {
        let run = || {
            let mut params = FabricScenarioParams::default();
            params.generator.kind = TopologyKind::FatTree;
            params.generator.fat_tree_k = 8;
            params.horizon = SimTime::from_secs(1);
            params.seed = 1;
            let mut scenario = Scenario::fabric(&params).expect("fat-tree builds");
            scenario.chaos = Some(ChaosSpec {
                seed: 7,
                start_secs: 0.1,
                link_flaps: 8,
                flap_rate_per_sec: 8.0,
                switch_crashes: 1,
                crash_downtime_secs: 0.2,
                ..Default::default()
            });
            let mut sim = Simulation::new(scenario, fast_config()).expect("valid scenario");
            let t = Instant::now();
            let r = sim.run();
            (r, t.elapsed().as_secs_f64())
        };
        let (best_r, best_w) = best_of(run);
        assert!(
            best_r.chaos.cable_downs > 0,
            "the flap process must actually fire"
        );
        Value::Map(vec![
            ("kind".into(), Value::Str("fat_tree_flaps".into())),
            ("k".into(), num_u(8)),
            ("wall_ms".into(), num_f(best_w * 1e3)),
            ("events".into(), num_u(best_r.events)),
            (
                "events_per_sec".into(),
                num_f(best_r.events as f64 / best_w.max(1e-9)),
            ),
            ("realloc_runs".into(), num_u(best_r.realloc_runs)),
            (
                "realloc_ns_per_op".into(),
                num_f(best_w * 1e9 / best_r.realloc_runs.max(1) as f64),
            ),
            ("cable_downs".into(), num_u(best_r.chaos.cable_downs)),
            ("flows_rerouted".into(), num_u(best_r.chaos.flows_rerouted)),
            ("flows_stranded".into(), num_u(best_r.chaos.flows_stranded)),
            ("recovery_mean_s".into(), num_f(best_r.recovery.mean)),
        ])
    };

    // 5. Epoch-wave point: a 400-member IXP (16 edges, 4 cores,
    //    oversubscribed 40G uplinks) under synchronized waves of
    //    transfers — 400 arrivals per timestamp, trunk-wide rate churn
    //    on every event, completions in waves too. Run twice over
    //    identical inputs: the PR-4 serial cadence (one allocator run
    //    per triggering event, single-threaded) versus the epoch-batched
    //    loop with a 4-worker component-parallel solve. Throughput is
    //    compared in *useful* events/sec (stale completion pops are
    //    scheduling overhead, and the per-event cadence fabricates far
    //    more of them); the batched loop must win by ≥ 1.5× or the
    //    process exits non-zero — the acceptance gate CI enforces.
    let (epoch_waves, wave_speedup) = {
        let scenario = || wave_ixp_scenario(400, 6, 400, ByteSize::mib(25), SimTime::from_secs(1));
        let quiet = SimConfig::default()
            .with_stats_epoch(None)
            .with_expiry_scan(None);
        let serial_cfg = quiet.with_realloc_per_event(true).with_engine_threads(1);
        let batched_cfg = quiet.with_engine_threads(4);
        let timed = |cfg: SimConfig| {
            best_of(|| {
                let mut sim = Simulation::new(scenario(), cfg).expect("valid scenario");
                let t = Instant::now();
                let r = sim.run();
                (r, t.elapsed().as_secs_f64())
            })
        };
        let (ser_r, ser_w) = timed(serial_cfg);
        let (bat_r, bat_w) = timed(batched_cfg);
        let useful = |r: &SimResults, w: f64| {
            r.events.saturating_sub(r.stale_completions) as f64 / w.max(1e-9)
        };
        let (ser_eps, bat_eps) = (useful(&ser_r, ser_w), useful(&bat_r, bat_w));
        let speedup = bat_eps / ser_eps.max(1e-9);
        let side = |r: &SimResults, w: f64, eps: f64| {
            Value::Map(vec![
                ("wall_ms".into(), num_f(w * 1e3)),
                ("events".into(), num_u(r.events)),
                ("stale_completions".into(), num_u(r.stale_completions)),
                ("useful_events_per_sec".into(), num_f(eps)),
                ("epochs".into(), num_u(r.epochs)),
                ("epoch_batch_mean".into(), num_f(r.mean_epoch_batch())),
                ("epoch_batch_max".into(), num_u(r.max_epoch_batch)),
                ("realloc_runs".into(), num_u(r.realloc_runs)),
                ("realloc_saved".into(), num_u(r.realloc_saved())),
                ("flows_completed".into(), num_u(r.flows_completed)),
            ])
        };
        // Same physics, different scheduling: the deterministic outcome
        // must agree before the wall comparison means anything.
        assert_eq!(
            ser_r.flows_completed, bat_r.flows_completed,
            "cadences disagree on completions"
        );
        let point = Value::Map(vec![
            ("kind".into(), Value::Str("ixp_waves".into())),
            ("members".into(), num_u(400)),
            ("flows".into(), num_u(bat_r.flows_admitted)),
            ("serial_per_event".into(), side(&ser_r, ser_w, ser_eps)),
            ("batched_t4".into(), side(&bat_r, bat_w, bat_eps)),
            ("speedup_useful_events_per_sec".into(), num_f(speedup)),
            ("speedup_wall".into(), num_f(ser_w / bat_w.max(1e-9))),
        ]);
        println!(
            "epoch_waves: serial {:.1} ms ({:.0} useful ev/s) vs batched+4t {:.1} ms \
             ({:.0} useful ev/s) -> {speedup:.2}x",
            ser_w * 1e3,
            ser_eps,
            bat_w * 1e3,
            bat_eps
        );
        (point, speedup)
    };

    // 6. Hybrid point: the 25-member scenario with an 8-flow packet
    //    foreground over the fluid background — the co-simulation's cost
    //    trajectory (packet events dominate; couplings measure the
    //    plane-interaction rate).
    let (hyb_r, hyb_w) = best_of_3(25, 8);
    let hybrid = Value::Map(vec![
        ("members".into(), num_u(25)),
        ("packet_foreground".into(), num_u(8)),
        ("wall_ms".into(), num_f(hyb_w * 1e3)),
        ("events".into(), num_u(hyb_r.events)),
        (
            "events_per_sec".into(),
            num_f(hyb_r.events as f64 / hyb_w.max(1e-9)),
        ),
        ("pkt_flows".into(), num_u(hyb_r.pkt_flows)),
        ("fct_foreground_p50".into(), num_f(hyb_r.fct_foreground.p50)),
    ]);

    // 7. Tracing overhead point. Two claims, separately enforced:
    //
    //    * Tracing DISABLED must stay free: a plain `Simulation` carries
    //      no tracer at all, so the default path is the same code the
    //      committed BENCH_pr5 baseline measured — the `--baseline` gate
    //      above is the regression check for "disabled tracing costs
    //      ~nothing" (quick-mode wall noise swamps a 1% bar; the
    //      baseline gate is the honest version of that criterion).
    //    * Tracing ENABLED (metrics + spans + journal to a sink) must
    //      keep the results bit-identical and cost bounded wall-clock:
    //      asserted here at ≥ `TRACE_EPS_FLOOR` of untraced events/sec.
    let trace_overhead = {
        let untraced = best_of(|| timed_run(100, 1, 0));
        let traced = best_of(|| {
            let mut s = ixp_scenario(100, 1.0, lb_policy(), SimTime::from_secs(2), 1);
            s.packet_foreground = 0;
            let mut sim = Simulation::new(s, fast_config()).expect("valid scenario");
            let tracer = SimTracer::new().with_spans().with_journal(std::io::sink());
            sim.set_tracer(tracer);
            let t = Instant::now();
            let r = sim.run();
            (r, t.elapsed().as_secs_f64())
        });
        let ((unt_r, unt_w), (tr_r, tr_w)) = (untraced, traced);
        assert_eq!(
            (unt_r.events, unt_r.flows_completed, unt_r.realloc_runs),
            (tr_r.events, tr_r.flows_completed, tr_r.realloc_runs),
            "tracing changed deterministic results"
        );
        let unt_eps = unt_r.events as f64 / unt_w.max(1e-9);
        let tr_eps = tr_r.events as f64 / tr_w.max(1e-9);
        let ratio = tr_eps / unt_eps.max(1e-9);
        println!(
            "trace_overhead: untraced {:.0} ev/s vs traced {:.0} ev/s -> {ratio:.3}x",
            unt_eps, tr_eps
        );
        if ratio < TRACE_EPS_FLOOR {
            eprintln!(
                "FAIL trace_overhead: full tracing retains only {ratio:.3}x of untraced \
                 events/sec (floor {TRACE_EPS_FLOOR:.2}x)"
            );
            std::process::exit(1);
        }
        Value::Map(vec![
            ("members".into(), num_u(100)),
            ("untraced_events_per_sec".into(), num_f(unt_eps)),
            ("traced_events_per_sec".into(), num_f(tr_eps)),
            ("traced_over_untraced".into(), num_f(ratio)),
        ])
    };

    // 8. Million-flow point: the fluid engine driven directly (no event
    //    loop) at two population sizes on the same 1024-path-class star —
    //    ~1.3·10^5 and ~10^6 concurrent greedy flows. Macro-flow
    //    aggregation solves both as 1024 weighted variables; the scaling
    //    claim is that the remaining per-epoch cost (build + materialize
    //    + apply over the component's flows) is linear in flows touched,
    //    so ns/flow/epoch must stay flat across the 8× jump — asserted
    //    at `MILLION_FLOW_RATIO_CEIL` on every run. Too heavy for
    //    best-of-3; each point runs once (the long epochs average the
    //    noise down instead).
    let (million_flow, million_ratio) = {
        let small = million_flow_point(1024, 128, 8);
        let large = million_flow_point(1024, 1024, 8);
        let ratio = large.churn_ns_per_flow / small.churn_ns_per_flow.max(1e-9);
        println!(
            "million_flow: {} flows as {} vars; churn {:.1} ns/flow vs {:.1} ns/flow \
             at {} flows -> ratio {ratio:.2}",
            large.flows,
            large.macro_vars,
            large.churn_ns_per_flow,
            small.churn_ns_per_flow,
            small.flows
        );
        let side = |s: &horse_bench::MillionFlowStats| {
            Value::Map(vec![
                ("classes".into(), num_u(s.classes as u64)),
                ("flows_per_class".into(), num_u(s.flows_per_class as u64)),
                ("flows".into(), num_u(s.flows)),
                ("macro_vars".into(), num_u(s.macro_vars)),
                ("admit_secs".into(), num_f(s.admit_secs)),
                ("full_solve_ms".into(), num_f(s.full_solve_secs * 1e3)),
                ("churn_epochs".into(), num_u(s.churn_epochs)),
                ("churn_ns_per_epoch".into(), num_f(s.churn_ns_per_epoch)),
                ("churn_ns_per_flow".into(), num_f(s.churn_ns_per_flow)),
                ("warm_hits".into(), num_u(s.warm_hits)),
                ("cold_solves".into(), num_u(s.cold_solves)),
            ])
        };
        let point = Value::Map(vec![
            ("kind".into(), Value::Str("star_macro_flows".into())),
            ("small".into(), side(&small)),
            ("large".into(), side(&large)),
            ("per_flow_cost_ratio".into(), num_f(ratio)),
        ]);
        (point, ratio)
    };

    // 9. Fork-sweep point: a 3-variant what-if sweep ("which member's
    //    access cable failing at t=2.85s hurts most?") whose variants
    //    share the first 93% of the horizon. Naive execution simulates
    //    all three runs from t=0; forked execution simulates the shared
    //    prefix once, checkpoints, and forks per variant — the reports
    //    must be byte-identical and the wall speedup at least
    //    `FORK_SPEEDUP_FLOOR`, both asserted on every run. The reactive
    //    mac-learning controller makes the prefix controller-chatty
    //    (per-arrival flow-ins) while keeping the divergent suffix
    //    local to the failed member — the regime prefix sharing is for.
    let (fork_sweep, fork_speedup) = {
        let spec = SweepSpec::from_toml(
            r#"
            name = "fork_smoke"
            [scenario]
            kind = "ixp"
            members = 200
            horizon_secs = 3.0
            load_factor = 2.0
            whatif_at_secs = 2.8
            whatif_fail_secs = 2.85
            whatif_repair_secs = 2.95
            [[scenario.policies]]
            type = "mac_learning"
            [axes]
            whatif_link_down = [50, 100, 150]
            "#,
        )
        .expect("fork spec parses");
        let plans = expand(&spec).expect("fork spec expands");
        let (naive, naive_w) = best_of(|| {
            let t = Instant::now();
            let report =
                run_plans_with(&spec.name, plans.clone(), 1, |_| {}).expect("naive sweep runs");
            (report, t.elapsed().as_secs_f64())
        });
        let groups = fork_groups(&plans)
            .expect("grouping succeeds")
            .expect("campaign is fork-eligible");
        let ((forked, stats), forked_w) = best_of(|| {
            let t = Instant::now();
            let out = run_forked(&spec.name, &groups, &ForkOptions::default(), |_| {})
                .expect("forked sweep runs");
            (out, t.elapsed().as_secs_f64())
        });
        assert_eq!(
            naive.metrics_csv(),
            forked.metrics_csv(),
            "forked reports must be byte-identical to naive"
        );
        assert_eq!(
            naive.metrics_json(),
            forked.metrics_json(),
            "forked reports must be byte-identical to naive"
        );
        let speedup = naive_w / forked_w.max(1e-9);
        println!(
            "fork_sweep: naive {:.1} ms vs forked {:.1} ms -> {speedup:.2}x \
             ({} prefix events shared across {} variants)",
            naive_w * 1e3,
            forked_w * 1e3,
            stats.prefix_events,
            stats.variant_runs
        );
        let point = Value::Map(vec![
            ("kind".into(), Value::Str("ixp_whatif".into())),
            ("members".into(), num_u(200)),
            ("variants".into(), num_u(stats.variant_runs as u64)),
            ("naive_wall_ms".into(), num_f(naive_w * 1e3)),
            ("forked_wall_ms".into(), num_f(forked_w * 1e3)),
            ("prefix_events".into(), num_u(stats.prefix_events)),
            (
                "prefix_events_saved".into(),
                num_u(stats.prefix_events_saved),
            ),
            ("snapshot_bytes".into(), num_u(stats.snapshot_bytes)),
            ("speedup_wall".into(), num_f(speedup)),
        ]);
        (point, speedup)
    };

    // 10. Packet-burst point: the hybrid WAN scenario (6-member IXP,
    //     40G access / 400G uplink, 50/250 µs delays) with 8 greedy TCP
    //     foreground flows at packet fidelity, pinned to a seed where
    //     both planes run loss-free — the regime where batching is
    //     provably benign. The oracle side walks every packet through
    //     the OpenFlow tables one event at a time; the batched side
    //     rides the PR-10 defaults (burst cap 32 + generation-stamped
    //     decision cache). Both must model the exact same packets
    //     (tx_packets equal — deterministic counter), drop nothing, and
    //     agree on every foreground FCT to within
    //     `PKT_BURST_FCT_DEV_CEIL`; the batched side must model at
    //     least `PKT_BURST_SPEEDUP_FLOOR`× more packets per
    //     wall-second. All asserted on every run.
    let (pkt_burst, pkt_speedup, pkt_fct_dev) = {
        let horizon = SimTime::from_secs(10);
        let measure = |cfg: SimConfig| {
            best_of(move || {
                let s = pkt_burst_scenario(9, 24, 8, horizon);
                let mut sim = Simulation::new(s, cfg).expect("valid scenario");
                let t = Instant::now();
                sim.run();
                let w = t.elapsed().as_secs_f64();
                let h = sim.hybrid().expect("hybrid attached");
                let fcts: Vec<Option<f64>> = h
                    .pkt_records(horizon)
                    .iter()
                    .map(|r| r.completed.then(|| r.fct_secs()))
                    .collect();
                let p = h.plane();
                (
                    (
                        p.tx_packets(),
                        p.drops(),
                        p.bursts_formed(),
                        p.cache_hits(),
                        p.cache_misses(),
                        fcts,
                    ),
                    w,
                )
            })
        };
        let oracle_cfg = SimConfig::default()
            .with_pkt_burst(1)
            .with_pkt_decision_cache(false);
        let ((otx, odrops, _, _, _, ofcts), ow) = measure(oracle_cfg);
        let ((btx, bdrops, bursts, hits, misses, bfcts), bw) = measure(SimConfig::default());
        assert_eq!(odrops, 0, "oracle side must run loss-free");
        assert_eq!(bdrops, 0, "batched side must run loss-free");
        assert_eq!(
            otx, btx,
            "both planes must model the same packets (deterministic counter)"
        );
        assert_eq!(
            ofcts.iter().map(|f| f.is_some()).collect::<Vec<_>>(),
            bfcts.iter().map(|f| f.is_some()).collect::<Vec<_>>(),
            "completion parity between oracle and batched planes"
        );
        let devs: Vec<f64> = ofcts
            .iter()
            .zip(&bfcts)
            .filter_map(|(o, b)| Some((b.as_ref()? - o.as_ref()?).abs() / o.as_ref()?))
            .collect();
        assert!(!devs.is_empty(), "foreground flows must complete");
        let fct_dev = devs.iter().sum::<f64>() / devs.len() as f64;
        let speedup = (btx as f64 / bw.max(1e-9)) / (otx as f64 / ow.max(1e-9));
        println!(
            "pkt_burst: {otx} packets; oracle {:.1} ms vs batched {:.1} ms -> {speedup:.2}x \
             ({bursts} bursts, {hits} cache hits / {misses} misses, mean FCT dev {fct_dev:.4})",
            ow * 1e3,
            bw * 1e3,
        );
        let side = |tx: u64, wall: f64| {
            Value::Map(vec![
                ("tx_packets".into(), num_u(tx)),
                ("wall_ms".into(), num_f(wall * 1e3)),
                (
                    "pkt_events_per_sec".into(),
                    num_f(tx as f64 / wall.max(1e-9)),
                ),
            ])
        };
        let point = Value::Map(vec![
            ("kind".into(), Value::Str("hybrid_wan_loss_free".into())),
            ("foreground_flows".into(), num_u(8)),
            ("burst_cap".into(), num_u(32)),
            ("oracle".into(), side(otx, ow)),
            ("batched".into(), side(btx, bw)),
            ("bursts_formed".into(), num_u(bursts)),
            ("cache_hits".into(), num_u(hits)),
            ("cache_misses".into(), num_u(misses)),
            ("fct_mean_deviation".into(), num_f(fct_dev)),
            ("speedup_pkt_events".into(), num_f(speedup)),
        ]);
        (point, speedup, fct_dev)
    };

    let doc = Value::Map(vec![
        ("bench".into(), Value::Str("bench_smoke".into())),
        ("pr".into(), num_u(pr)),
        ("mode".into(), Value::Str("quick".into())),
        ("runner_throughput".into(), runner),
        ("scale".into(), Value::Seq(scale_points)),
        ("fat_tree".into(), fat_tree_point),
        ("chaos_flaps".into(), chaos_point),
        ("epoch_waves".into(), epoch_waves),
        ("hybrid".into(), hybrid),
        ("trace_overhead".into(), trace_overhead),
        ("million_flow".into(), million_flow),
        ("fork_sweep".into(), fork_sweep),
        ("pkt_burst".into(), pkt_burst),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench json");
    println!("wrote {out_path}");

    // Epoch-batching acceptance: enforced on every invocation (CI runs
    // this binary), not just when a baseline is supplied.
    if wave_speedup < WAVE_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL epoch_waves: batched+4t useful events/sec is only {wave_speedup:.2}x \
             the per-event serial cadence (floor {WAVE_SPEEDUP_FLOOR:.1}x)"
        );
        std::process::exit(1);
    }

    // Million-flow acceptance: no superlinear growth in per-epoch
    // allocator cost; enforced on every invocation, like the wave gate.
    if million_ratio > MILLION_FLOW_RATIO_CEIL {
        eprintln!(
            "FAIL million_flow: per-flow per-epoch cost grew {million_ratio:.2}x across \
             an 8x population jump (ceiling {MILLION_FLOW_RATIO_CEIL:.1}x)"
        );
        std::process::exit(1);
    }

    // Fork-sweep acceptance: prefix sharing must actually pay; enforced
    // on every invocation, like the wave gate.
    if fork_speedup < FORK_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL fork_sweep: forked what-if execution is only {fork_speedup:.2}x faster \
             than naive re-simulation (floor {FORK_SPEEDUP_FLOOR:.1}x)"
        );
        std::process::exit(1);
    }

    // Packet-burst acceptance: the batched plane must pay its way
    // without bending foreground FCTs; both enforced on every
    // invocation, like the wave gate.
    if pkt_speedup < PKT_BURST_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL pkt_burst: batched plane models only {pkt_speedup:.2}x more packets \
             per wall-second than the per-packet oracle (floor {PKT_BURST_SPEEDUP_FLOOR:.1}x)"
        );
        std::process::exit(1);
    }
    if pkt_fct_dev > PKT_BURST_FCT_DEV_CEIL {
        eprintln!(
            "FAIL pkt_burst: mean foreground FCT deviation {pkt_fct_dev:.4} exceeds \
             the fidelity ceiling {PKT_BURST_FCT_DEV_CEIL:.2}"
        );
        std::process::exit(1);
    }

    // 11. Regression gate against a committed baseline.
    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("baseline {path} is not valid JSON: {e:?}"));
        let failures = gate(&baseline, &doc);
        if failures.is_empty() {
            println!(
                "bench gate vs {path}: OK (tolerance {:.0}%)",
                TOLERANCE * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("{f}");
            }
            eprintln!(
                "bench gate vs {path}: {} regression(s) beyond {:.0}%",
                failures.len(),
                TOLERANCE * 100.0
            );
            std::process::exit(1);
        }
    }
}
