//! Quick-mode bench smoke: runs the sweep + scale benches in a fast
//! configuration and writes a machine-readable `BENCH_pr2.json` so the
//! repository's bench trajectory has recorded data points (runner
//! throughput, reallocate ns/op, events/sec).
//!
//! Wall-clock numbers vary with the host; the point is the *trajectory*
//! within one machine (CI keeps the artifact per run) plus the
//! deterministic counters alongside them.
//!
//! Usage: `bench_smoke [--out BENCH_pr2.json]`

use horse::prelude::*;
use horse_bench::{fast_config, ixp_scenario, lb_policy};
use serde::{Number, Value};
use std::time::Instant;

fn num_f(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

fn num_u(v: u64) -> Value {
    Value::Number(Number::UInt(v))
}

/// Timed single-scenario run: returns (results, wall seconds).
fn timed_run(members: usize, seed: u64) -> (SimResults, f64) {
    let s = ixp_scenario(members, 1.0, lb_policy(), SimTime::from_secs(2), seed);
    let mut sim = Simulation::new(s, fast_config()).expect("valid scenario");
    let t = Instant::now();
    let r = sim.run();
    (r, t.elapsed().as_secs_f64())
}

fn main() {
    let mut out_path = String::from("BENCH_pr2.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // 1. Runner throughput: the ctrl_latency example sweep in quick mode
    //    (the same spec CI's acceptance step compares across threads).
    let spec = SweepSpec::from_toml(
        r#"
        name = "smoke"
        replicates = 2
        [scenario]
        kind = "ixp"
        members = 25
        horizon_secs = 1.0
        [[scenario.policies]]
        type = "mac_learning"
        [axes]
        ctrl_latency_us = [0, 1000]
        "#,
    )
    .expect("smoke spec parses");
    let report = run_sweep(&spec, 2).expect("smoke sweep runs");
    let sweep_events: u64 = report.runs.iter().map(|r| r.metrics.events).sum();
    let runner = Value::Map(vec![
        ("runs".into(), num_u(report.runs.len() as u64)),
        ("threads".into(), num_u(report.threads as u64)),
        ("wall_seconds".into(), num_f(report.campaign_wall_seconds)),
        (
            "runs_per_sec".into(),
            num_f(report.runs.len() as f64 / report.campaign_wall_seconds.max(1e-9)),
        ),
        (
            "events_per_sec".into(),
            num_f(sweep_events as f64 / report.campaign_wall_seconds.max(1e-9)),
        ),
    ]);

    // 2. Scale points (benches/scale.rs in quick mode): wall per scenario,
    //    events/sec, and reallocate ns/op derived from the engine's own
    //    allocator-run counter.
    let mut scale_points = Vec::new();
    for members in [25usize, 50, 100, 200] {
        // Warm once, measure the best of 3 (quick-mode noise guard).
        let _ = timed_run(members, 1);
        let (mut best_r, mut best_w) = timed_run(members, 1);
        for _ in 0..2 {
            let (r, w) = timed_run(members, 1);
            if w < best_w {
                best_w = w;
                best_r = r;
            }
        }
        scale_points.push(Value::Map(vec![
            ("members".into(), num_u(members as u64)),
            ("wall_ms".into(), num_f(best_w * 1e3)),
            ("events".into(), num_u(best_r.events)),
            (
                "events_per_sec".into(),
                num_f(best_r.events as f64 / best_w.max(1e-9)),
            ),
            ("realloc_runs".into(), num_u(best_r.realloc_runs)),
            (
                "realloc_ns_per_op".into(),
                // Upper bound: whole-run wall over allocator invocations.
                num_f(best_w * 1e9 / best_r.realloc_runs.max(1) as f64),
            ),
            (
                "realloc_flows_touched".into(),
                num_u(best_r.realloc_flows_touched),
            ),
        ]));
    }

    let doc = Value::Map(vec![
        ("bench".into(), Value::Str("bench_smoke".into())),
        ("pr".into(), num_u(2)),
        ("mode".into(), Value::Str("quick".into())),
        ("runner_throughput".into(), runner),
        ("scale".into(), Value::Seq(scale_points)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("serializes");
    std::fs::write(&out_path, json + "\n").expect("write bench json");
    println!("wrote {out_path}");
}
