//! E5 — Policy-configuration sweep: "from basic forwarding based on
//! source and destination MAC, to more complex combination of policies
//! such as load-balancing and application-layer peering" (paper, §2).
//!
//! Each row simulates the same 100-member workload under a progressively
//! richer policy configuration and reports simulation cost plus
//! control-plane activity. Reactive MAC learning pays per-flow controller
//! round trips; the richer proactive mixes cost more rules but no
//! round trips.
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_e5`

use horse::prelude::*;
use horse_bench::{fast_config, fmt_wall, ixp_scenario};

fn policy_mix(level: usize) -> (String, PolicySpec) {
    match level {
        0 => (
            "mac-forwarding".into(),
            PolicySpec::new().with(PolicyRule::MacForwarding),
        ),
        1 => (
            "mac-learning (reactive)".into(),
            PolicySpec::new().with(PolicyRule::MacLearning),
        ),
        2 => (
            "load-balancing".into(),
            PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp }),
        ),
        3 => {
            let mut spec = PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp });
            for i in 0..5 {
                spec = spec.with(PolicyRule::AppPeering {
                    src: format!("m{}", i * 2 + 1),
                    dst: format!("m{}", i * 2 + 2),
                    app: AppClass::Http,
                    path_rank: 1,
                });
            }
            ("lb + 5x app-peering".into(), spec)
        }
        _ => {
            let mut spec = PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp });
            for i in 0..5 {
                spec = spec.with(PolicyRule::AppPeering {
                    src: format!("m{}", i * 2 + 1),
                    dst: format!("m{}", i * 2 + 2),
                    app: AppClass::Http,
                    path_rank: 1,
                });
                spec = spec.with(PolicyRule::RateLimit {
                    src: format!("m{}", i * 2 + 11),
                    dst: format!("m{}", i * 2 + 12),
                    rate_mbps: 500.0,
                });
            }
            spec = spec
                .with(PolicyRule::SourceRouting {
                    src: "m31".into(),
                    dst: "m32".into(),
                    via: vec!["c1".into()],
                })
                .with(PolicyRule::Blackhole {
                    victim: "m40".into(),
                });
            ("full mix (lb+peer+limit+srcroute+blackhole)".into(), spec)
        }
    }
}

fn main() {
    let horizon = SimTime::from_secs(10);
    println!("== E5: policy sweep at 100 members (10 simulated seconds) ==");
    println!("configuration                                |  wall     |   events | flow-ins | msgs down | drops");
    println!("---------------------------------------------+-----------+----------+----------+-----------+------");
    for level in 0..5 {
        let (label, policy) = policy_mix(level);
        let scenario = ixp_scenario(100, 1.0, policy, horizon, 4);
        let mut sim = Simulation::new(scenario, fast_config()).expect("valid scenario");
        let r = sim.run();
        println!(
            "{label:<44} | {:>9} | {:>8} | {:>8} | {:>9} | {:>5}",
            fmt_wall(r.wall_seconds),
            r.events,
            r.flow_ins,
            r.msgs_to_switch,
            r.flows_dropped,
        );
    }
}
