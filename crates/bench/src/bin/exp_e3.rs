//! E3 — Accuracy of the flow-level abstraction vs packet-level ground
//! truth: per-flow FCT error, per-link utilization error, delivered-volume
//! error, on identical workloads.
//!
//! Expected shape (fs-sdn's finding, which the poster builds on):
//! aggregate metrics (utilization, volume) match closely; per-flow FCTs
//! diverge for short flows because the fluid model has no TCP slow-start
//! ramp — the error shrinks as flows grow.
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_e3`

use horse::compare::{compare_planes, materialize_workload};
use horse::prelude::*;

fn accuracy_with_sizes(min_bytes: u64, label: &str) {
    let mut params = IxpScenarioParams::default();
    params.fabric.members = 16;
    params.fabric.member_port_speeds = vec![Rate::mbps(200.0)];
    params.fabric.uplink_speed = Rate::gbps(1.0);
    params.offered_bps = 16.0 * 40e6;
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.3,
        min_bytes,
        max_bytes: min_bytes * 200,
    };
    params.horizon = SimTime::from_secs(5);
    params.seed = 33;
    let mut scenario = Scenario::ixp(&params);
    materialize_workload(&mut scenario, 150);
    let report = compare_planes(
        &scenario,
        SimConfig::default().with_stats_epoch(Some(SimDuration::from_millis(500))),
    );
    println!(
        "{label:>9} | {:>5} | {:>10.1}% | {:>10.1}% | {:>8.4} | {:>8.4} | {:>9.2}%",
        report.flows_compared,
        report.fct_rel_error.p50 * 100.0,
        report.fct_rel_error.p95 * 100.0,
        report.util_mae,
        report.util_rmse,
        report.bytes_rel_error * 100.0,
    );
}

fn main() {
    println!("== E3: flow-level vs packet-level accuracy (16-member IXP, 5 s) ==");
    println!("flow size | flows | fct-err p50 | fct-err p95 | util MAE | util RMSE | volume err");
    println!("----------+-------+-------------+-------------+----------+-----------+-----------");
    accuracy_with_sizes(50_000, "50 kB");
    accuracy_with_sizes(500_000, "500 kB");
    accuracy_with_sizes(5_000_000, "5 MB");
    println!();
    println!("(fluid FCTs lack TCP slow-start, so short transfers show the largest");
    println!(" relative error; aggregate utilization and volume stay within a few");
    println!(" percent — the level of abstraction the paper targets for policy studies)");
}
