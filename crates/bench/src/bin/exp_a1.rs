//! A1 (ablation) — full vs incremental max-min recomputation.
//!
//! The design choice DESIGN.md §3 calls out: recompute every flow on
//! every change (simple, O(all flows)) or only the connected component of
//! flows sharing links with the change. The rates produced are identical
//! (max-min is unique); only the work differs.
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_a1`

use horse::prelude::*;
use horse_bench::{fmt_wall, ixp_scenario, lb_policy, run_fluid};

fn main() {
    let horizon = SimTime::from_secs(10);
    println!("== A1: allocator ablation (10 simulated seconds) ==");
    println!("members | mode        |  wall     | flows touched | bytes delivered");
    println!("--------+-------------+-----------+---------------+----------------");
    for members in [50usize, 100, 200] {
        let mut rows = Vec::new();
        for (label, mode) in [
            ("full", AllocMode::Full),
            ("incremental", AllocMode::Incremental),
        ] {
            let s = ixp_scenario(members, 1.0, lb_policy(), horizon, 5);
            let cfg = SimConfig::default().with_alloc_mode(mode);
            let r = run_fluid(s, cfg);
            println!(
                "{members:>7} | {label:<11} | {:>9} | {:>13} | {:>15.4e}",
                fmt_wall(r.wall_seconds),
                r.realloc_flows_touched,
                r.bytes_delivered,
            );
            rows.push(r.bytes_delivered);
        }
        let rel = (rows[0] - rows[1]).abs() / rows[0].max(1.0);
        assert!(
            rel < 1e-6,
            "modes must deliver identical bytes (diff {rel})"
        );
    }
    println!("\n(identical delivered bytes confirm the incremental mode is exact)");
}
