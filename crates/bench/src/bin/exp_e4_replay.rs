//! E4 — IXP replay over time: the paper's "assess the simulator using
//! real data from the IXP itself, by replaying its behavior over time".
//!
//! Real traces being proprietary, the replay drives the documented
//! synthetic equivalent (gravity matrix × diurnal profile — DESIGN.md §4)
//! through a 100-member fabric and reports the recovered daily load curve
//! plus the wall-clock cost of the replay.
//!
//! Run with: `cargo run --release -p horse-bench --bin exp_e4_replay [hours]`
//! (default 2 simulated hours; 24 reproduces the full day)

use horse::prelude::*;
use horse_bench::fmt_wall;

fn main() {
    let hours = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(2);

    let mut params = IxpScenarioParams::default();
    params.fabric.members = 100;
    params.fabric.edge_switches = 8;
    params.fabric.core_switches = 4;
    params.fabric.member_port_speeds = vec![Rate::gbps(10.0)];
    params.offered_bps = 20e9;
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.2,
        min_bytes: 2_000_000,
        max_bytes: 5_000_000_000,
    };
    params.diurnal = Some(DiurnalProfile::default());
    params.horizon = SimTime::from_secs(hours * 3600);
    params.seed = 20160822;
    let scenario = Scenario::ixp(&params);

    let config = SimConfig::default()
        .with_alloc_mode(AllocMode::Incremental)
        .with_stats_epoch(Some(SimDuration::from_secs(300)));
    println!("== E4: {hours}h diurnal replay over 100 members ==");
    let mut sim = Simulation::new(scenario, config).expect("valid scenario");
    let results = sim.run();

    println!("hour | load (Gbps) | active flows");
    println!("-----+-------------+-------------");
    for epoch in results.collector.epochs.iter().step_by(12) {
        println!(
            "{:>4.1} | {:>11.2} | {:>12}",
            epoch.time.as_secs_f64() / 3600.0,
            epoch.aggregate_rate_bps / 1e9,
            epoch.active_flows
        );
    }
    println!();
    println!(
        "replayed {:.1} simulated hours in {} ({:.0}x real time, {} events, {} flows)",
        results.sim_time.as_secs_f64() / 3600.0,
        fmt_wall(results.wall_seconds),
        results.speedup(),
        results.events,
        results.flows_admitted,
    );
}
