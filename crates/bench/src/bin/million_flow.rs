//! Million-flow scaling demo: drives the fluid engine directly (no
//! simulation loop) at a parameterized population size and prints the
//! deterministic size counters next to the wall costs — the numbers the
//! `docs/PERFORMANCE.md` scaling guide explains.
//!
//! Usage:
//!   million_flow [--classes N] [--flows-per-class M] [--churn-epochs E]
//!
//! The default point is the headline one: 1024 path classes × 1024
//! flows per class ≈ 10^6 concurrent flows, solved as 1024 weighted
//! variables.

use horse_bench::{fmt_wall, million_flow_point};

fn main() {
    let mut classes = 1024usize;
    let mut flows_per_class = 1024usize;
    let mut churn_epochs = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} takes a number"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} takes a number"))
        };
        match a.as_str() {
            "--classes" => classes = take("--classes"),
            "--flows-per-class" => flows_per_class = take("--flows-per-class"),
            "--churn-epochs" => churn_epochs = take("--churn-epochs"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: million_flow [--classes N] [--flows-per-class M] [--churn-epochs E]"
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "million_flow: {classes} classes x {flows_per_class} flows/class, \
         {churn_epochs} churn epochs"
    );
    let s = million_flow_point(classes, flows_per_class, churn_epochs);
    println!("  flows admitted     {:>12}", s.flows);
    println!(
        "  macro variables    {:>12}   ({}x aggregation)",
        s.macro_vars,
        s.flows / s.macro_vars.max(1)
    );
    println!("  admit wall         {:>12}", fmt_wall(s.admit_secs));
    println!("  cold full solve    {:>12}", fmt_wall(s.full_solve_secs));
    println!(
        "  churn epoch wall   {:>12}   ({:.1} ns/flow)",
        fmt_wall(s.churn_ns_per_epoch / 1e9),
        s.churn_ns_per_flow
    );
    println!(
        "  warm hits          {:>12}   (cold solves {})",
        s.warm_hits, s.cold_solves
    );
}
