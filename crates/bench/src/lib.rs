//! Shared harness for the Horse experiment suite (DESIGN.md §5).
//!
//! Each `exp_*` binary regenerates one experiment's table; the Criterion
//! benches in `benches/` track the same code paths as regression
//! benchmarks. EXPERIMENTS.md records paper-expectation vs measured.

#![warn(missing_docs)]

use horse::prelude::*;

/// Builds the standard IXP scenario used across E1/E2/E5:
/// `members` member routers on an edge/core fabric, gravity traffic at
/// `load_factor` × (40 Mbps per member), megabyte-scale heavy-tailed
/// flows.
pub fn ixp_scenario(
    members: usize,
    load_factor: f64,
    policy: PolicySpec,
    horizon: SimTime,
    seed: u64,
) -> Scenario {
    let mut params = IxpScenarioParams::default();
    params.fabric.members = members;
    params.fabric.edge_switches = (members / 25).clamp(2, 16);
    params.fabric.core_switches = (members / 100).clamp(2, 4);
    // uniform fast access ports: the sweep measures simulator cost, and an
    // oversubscribed tail member would measure congestion pile-up instead
    params.fabric.member_port_speeds = vec![Rate::gbps(10.0)];
    params.offered_bps = members as f64 * 40e6 * load_factor;
    params.zipf_alpha = 1.0;
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.3,
        min_bytes: 1_000_000,
        max_bytes: 1_000_000_000,
    };
    params.policy = policy;
    params.horizon = horizon;
    params.seed = seed;
    Scenario::ixp(&params)
}

/// The default experiment policy: ECMP load balancing.
pub fn lb_policy() -> PolicySpec {
    PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp })
}

/// "Basic forwarding based on source and destination MAC" (paper).
pub fn mac_policy() -> PolicySpec {
    PolicySpec::new().with(PolicyRule::MacForwarding)
}

/// Runs a scenario through the fluid plane and returns the results.
pub fn run_fluid(scenario: Scenario, config: SimConfig) -> SimResults {
    let mut sim = Simulation::new(scenario, config).expect("valid scenario");
    sim.run()
}

/// The incremental-allocation config used for scale experiments.
pub fn fast_config() -> SimConfig {
    SimConfig::default()
        .with_alloc_mode(AllocMode::Incremental)
        .with_stats_epoch(Some(SimDuration::from_secs(1)))
}

/// A large IXP scenario driven by synchronized *waves* of transfers —
/// the shuffle-like shape that motivates epoch batching: every wave
/// drops `flows_per_wave` greedy arrivals onto a single timestamp, and
/// the edge→core uplinks are oversubscribed, so every arrival and every
/// completion shifts the max-min shares of whole trunk components. The
/// per-event cadence therefore pays one allocator run *and a round of
/// completion rescheduling* per event, while the epoch-batched loop pays
/// one run per wave; the flows are equal-sized, so completions arrive in
/// waves too. Traffic is spread round-robin over the edges, so each wave
/// decomposes into per-trunk allocation components — the shape the
/// `engine_threads` worker pool parallelizes over.
pub fn wave_ixp_scenario(
    members: usize,
    waves: usize,
    flows_per_wave: usize,
    size: ByteSize,
    horizon: SimTime,
) -> Scenario {
    let fabric = builders::ixp_fabric(&builders::IxpFabricParams {
        members,
        edge_switches: (members / 25).clamp(2, 16),
        core_switches: (members / 100).clamp(2, 4),
        // uniform fast access ports + tight uplinks: the waves contend at
        // the fabric trunks, not at a lucky member's slow port
        member_port_speeds: vec![Rate::gbps(10.0)],
        uplink_speed: Rate::gbps(40.0),
        ..Default::default()
    });
    let mut s = Scenario::bare(fabric.topology, horizon);
    s.members = fabric.members;
    s.policy = lb_policy();
    for w in 0..waves {
        let at = SimTime::from_millis(50 + 100 * w as u64);
        for i in 0..flows_per_wave {
            // src walks the members; dst sits half the ring away, so
            // every flow crosses the fabric and srcs/dsts stay spread.
            let src = i % members;
            let dst = (i + members / 2 + (i / members)) % members;
            let dst = if dst == src { (dst + 1) % members } else { dst };
            let spec = s
                .flow_between(
                    s.members[src],
                    s.members[dst],
                    AppClass::Https,
                    (4000 + w * 1500 + i) as u16,
                    Some(size),
                    DemandModel::Greedy,
                )
                .expect("member pair resolves");
            s.explicit_flows.push((at, spec));
        }
    }
    s
}

/// One measured point of the million-flow scaling harness
/// ([`million_flow_point`]): deterministic size counters next to the
/// wall-clock costs they bound.
#[derive(Debug, Clone)]
pub struct MillionFlowStats {
    /// Path classes admitted (distinct `(src, dst)` host pairs).
    pub classes: usize,
    /// Identical greedy flows admitted per class.
    pub flows_per_class: usize,
    /// Total concurrent flows (`classes * flows_per_class`).
    pub flows: u64,
    /// Variables the cold full solve actually water-filled — with
    /// macro-flow aggregation this is `classes`, not `flows`
    /// (deterministic; host-independent).
    pub macro_vars: u64,
    /// Wall seconds to admit the whole population.
    pub admit_secs: f64,
    /// Wall seconds of the first `reallocate` over the full population.
    pub full_solve_secs: f64,
    /// Churn epochs measured (alternating admit-one / remove-one, each
    /// followed by one epoch-batched `reallocate`).
    pub churn_epochs: u64,
    /// Mean wall nanoseconds per churn epoch.
    pub churn_ns_per_epoch: f64,
    /// Mean wall nanoseconds per flow per churn epoch — the scaling
    /// figure of merit: flat across population sizes means the
    /// allocator's per-epoch cost stays linear in flows touched.
    pub churn_ns_per_flow: f64,
    /// Warm-cache hits across the churn epochs (deterministic).
    pub warm_hits: u64,
    /// Water-fills actually executed, full solve included
    /// (deterministic).
    pub cold_solves: u64,
}

/// Builds the million-flow fabric: a star of `hosts` access links at
/// 1 Gbps with per-MAC forwarding installed on the hub, and the fluid
/// engine in incremental mode with macro-flows + warm-start on.
pub fn million_flow_net(hosts: usize, engine_threads: usize) -> horse::dataplane::FluidNet {
    use horse::dataplane::{FluidConfig, FluidNet};
    use horse::openflow::actions::Instruction;
    use horse::openflow::flow_match::FlowMatch;
    use horse::openflow::messages::{CtrlMsg, FlowMod};
    use horse::openflow::table::FlowEntry;
    let f = builders::star(hosts, Rate::gbps(1.0));
    let cfg = FluidConfig {
        alloc_mode: AllocMode::Incremental,
        engine_threads,
        ..FluidConfig::default()
    };
    let mut net = FluidNet::new(f.topology, cfg);
    let hub = f.edges[0];
    let topo = net.topology().clone();
    for (_, l) in topo.out_links(hub) {
        if let Some(host) = topo.node(l.dst).filter(|n| n.kind.is_host()) {
            net.apply_ctrl(
                hub,
                &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    100,
                    FlowMatch::ANY.with_eth_dst(host.mac().unwrap()),
                    vec![Instruction::output(l.src_port)],
                ))),
                SimTime::ZERO,
            );
        }
    }
    net
}

/// Drives the fluid engine directly at population scale: admits
/// `classes * flows_per_class` greedy flows onto a 64-host star (class
/// `c` is the `c`-th ordered host pair, so every class is one path
/// class and macro-flow aggregation collapses it to a single weighted
/// variable), pays one cold full solve, then measures `churn_epochs`
/// alternating admit-one/remove-one epochs — the steady-state cadence
/// whose per-epoch cost the PERFORMANCE.md scaling guide bounds.
///
/// Panics if `classes` exceeds the 64·63 ordered pairs of the fabric.
pub fn million_flow_point(
    classes: usize,
    flows_per_class: usize,
    churn_epochs: usize,
) -> MillionFlowStats {
    use horse::dataplane::AdmitOutcome;
    use horse::types::FlowId;
    use std::time::Instant;
    const HOSTS: usize = 64;
    assert!(classes <= HOSTS * (HOSTS - 1), "not enough host pairs");
    let mut net = million_flow_net(HOSTS, 1);
    let topo = net.topology().clone();
    let members: Vec<NodeId> = topo
        .nodes()
        .filter(|(_, n)| n.kind.is_host())
        .map(|(id, _)| id)
        .collect();
    let pair = |c: usize| {
        let src = c / (HOSTS - 1);
        let r = c % (HOSTS - 1);
        (src, r + usize::from(r >= src))
    };
    let mk_spec = |src: usize, dst: usize, sport: u16| FlowSpec {
        key: FlowKey::tcp(
            topo.node(members[src]).unwrap().mac().unwrap(),
            topo.node(members[dst]).unwrap().mac().unwrap(),
            topo.node(members[src]).unwrap().ip().unwrap(),
            topo.node(members[dst]).unwrap().ip().unwrap(),
            sport,
            80,
        ),
        src: members[src],
        dst: members[dst],
        demand: DemandModel::Greedy,
        size: None, // endless: the population stays put under churn
        fidelity: Default::default(),
    };

    // 1. Admission: the full population, one epoch.
    let t0 = SimTime::ZERO;
    let t = Instant::now();
    for c in 0..classes {
        let (src, dst) = pair(c);
        for i in 0..flows_per_class {
            let id = net.reserve_id();
            let admitted = matches!(
                net.try_admit(id, mk_spec(src, dst, i as u16), t0),
                AdmitOutcome::Admitted
            );
            assert!(admitted, "class {c} flow {i} rejected");
        }
    }
    let admit_secs = t.elapsed().as_secs_f64();

    // 2. The cold solve over everything (one epoch-batched reallocate).
    let t = Instant::now();
    net.reallocate(t0);
    let full_solve_secs = t.elapsed().as_secs_f64();
    let macro_vars = net.macro_flows;

    // 3. Steady-state churn: admit one flow into a rotating class, then
    //    remove it next epoch — each epoch pays one reallocate whose
    //    component spans the whole population (every class shares an
    //    access link with a neighbor), so the wall cost per epoch is the
    //    per-epoch allocator cost at this population size.
    let flows = (classes * flows_per_class) as u64;
    let extra_sport = flows_per_class as u16;
    let mut extra: Option<FlowId> = None;
    let t = Instant::now();
    for e in 0..churn_epochs {
        let at = SimTime::from_millis(1 + e as u64);
        match extra.take() {
            Some(id) => {
                net.remove_flow(id, at, true);
            }
            None => {
                let (src, dst) = pair((e / 2) % classes);
                let id = net.reserve_id();
                let admitted = matches!(
                    net.try_admit(id, mk_spec(src, dst, extra_sport), at),
                    AdmitOutcome::Admitted
                );
                assert!(admitted, "churn flow rejected");
                extra = Some(id);
            }
        }
        net.reallocate(at);
    }
    let churn_secs = t.elapsed().as_secs_f64();
    let churn_ns_per_epoch = churn_secs * 1e9 / (churn_epochs.max(1) as f64);
    MillionFlowStats {
        classes,
        flows_per_class,
        flows,
        macro_vars,
        admit_secs,
        full_solve_secs,
        churn_epochs: churn_epochs as u64,
        churn_ns_per_epoch,
        churn_ns_per_flow: churn_ns_per_epoch / flows.max(1) as f64,
        warm_hits: net.warm_hits,
        cold_solves: net.cold_solves,
    }
}

/// The packet-burst bench scenario (PR 10): the 6-member
/// hybrid-accuracy fabric shape with uniform 40G access ports behind
/// metro-scale propagation (50 µs access, 250 µs fabric) and the first
/// `foreground` gravity arrivals at packet fidelity. The geometry is
/// deliberate: serialization (0.3 µs per 1500 B segment) is
/// parts-per-thousand of every RTT, so GSO-style burst batching — whose
/// only timing skew is `(cap − 1)` serialization slots per delivery
/// round — tracks the per-packet oracle within 1% FCT, and megabyte
/// foreground flows stay far under the loss-free window ceiling
/// (BDP ≈ 6 MB), so the comparison never crosses an RTO discontinuity.
pub fn pkt_burst_scenario(seed: u64, n: usize, foreground: usize, horizon: SimTime) -> Scenario {
    let f = builders::ixp_fabric(&builders::IxpFabricParams {
        members: 6,
        edge_switches: 4,
        core_switches: 2,
        member_port_speeds: vec![Rate::gbps(40.0)],
        uplink_speed: Rate::gbps(400.0),
        access_delay: SimDuration::from_micros(50),
        fabric_delay: SimDuration::from_micros(250),
    });
    let mut s = Scenario::bare(f.topology, horizon);
    s.members = f.members;
    s.policy = lb_policy();
    let weights = TrafficMatrix::zipf_weights(s.members.len(), 0.8);
    s.workload = Some(WorkloadParams {
        matrix: TrafficMatrix::gravity(&weights, 4e8),
        // Under the slow-start queue ceiling: each delivery round the
        // ack-clock offers 2× line rate into the sender's access port,
        // so the queue peaks near half the largest full window. The
        // Pareto body keeps most flows at a few hundred KB (windows
        // ≤ 160 segments, peak queue well under the 174-segment buffer)
        // and short enough that zipf-hot destinations rarely see two
        // flows ramping at once — loss-free at the pinned seed below.
        sizes: FlowSizeDist::Pareto {
            alpha: 1.3,
            min_bytes: 150_000,
            max_bytes: 1_200_000,
        },
        apps: AppMix::default_ixp(),
        diurnal: None,
        udp_rate: Rate::mbps(4.0),
        seed,
    });
    horse::compare::materialize_workload(&mut s, n);
    for (_, spec) in s.explicit_flows.iter_mut().take(foreground) {
        spec.fidelity = Fidelity::Packet;
    }
    s
}

/// Formats a wall-clock duration for table cells.
pub fn fmt_wall(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ixp_scenario_builds_and_runs() {
        let s = ixp_scenario(25, 1.0, lb_policy(), SimTime::from_secs(2), 3);
        let r = run_fluid(s, fast_config());
        assert!(r.flows_admitted > 0);
        assert!(r.events > 0);
    }

    #[test]
    fn policies_build() {
        assert_eq!(lb_policy().policies.len(), 1);
        assert_eq!(mac_policy().policies.len(), 1);
    }

    #[test]
    fn wave_scenario_batches_arrivals() {
        let s = wave_ixp_scenario(16, 2, 8, ByteSize::mib(4), SimTime::from_secs(1));
        assert_eq!(s.explicit_flows.len(), 16);
        let first_wave_at = s.explicit_flows[0].0;
        assert_eq!(
            s.explicit_flows
                .iter()
                .filter(|(at, _)| *at == first_wave_at)
                .count(),
            8,
            "a whole wave shares one timestamp"
        );
        let r = run_fluid(s, SimConfig::default().with_stats_epoch(None));
        assert_eq!(r.flows_admitted, 16);
        assert_eq!(r.flows_completed, 16);
        assert!(r.max_epoch_batch >= 8, "waves form epoch batches");
        assert!(r.realloc_saved() > 0, "batching saves allocator runs");
    }

    #[test]
    fn million_flow_harness_aggregates_and_warms() {
        let s = million_flow_point(64, 4, 6);
        assert_eq!(s.flows, 256);
        // One weighted variable per path class, not per flow.
        assert_eq!(s.macro_vars, 64);
        // Remove-one epochs restore the previous problem exactly, so the
        // warm cache answers them.
        assert!(s.warm_hits > 0, "warm cache never hit under churn");
        assert!(s.cold_solves > 0);
        assert!(s.churn_ns_per_epoch > 0.0 && s.full_solve_secs > 0.0);
    }

    #[test]
    #[ignore]
    fn debug_pkt_burst_seed_sweep() {
        let horizon = SimTime::from_secs(10);
        for seed in 1..=20u64 {
            let run = |cfg: SimConfig| {
                let s = pkt_burst_scenario(seed, 24, 8, horizon);
                let mut sim = Simulation::new(s, cfg).expect("valid scenario");
                let t = std::time::Instant::now();
                sim.run();
                let w = t.elapsed().as_secs_f64();
                let h = sim.hybrid().expect("hybrid attached");
                let fcts: Vec<Option<f64>> = h
                    .pkt_records(horizon)
                    .iter()
                    .map(|r| r.completed.then(|| r.fct_secs()))
                    .collect();
                (h.plane().drops(), h.plane().tx_packets(), fcts, w)
            };
            let oracle_cfg = SimConfig::default()
                .with_pkt_burst(1)
                .with_pkt_decision_cache(false);
            let (od, otx, ofcts, mut ow) = run(oracle_cfg);
            let (bd, btx, bfcts, mut bw) = run(SimConfig::default());
            for _ in 0..2 {
                let (.., w) = run(oracle_cfg);
                ow = ow.min(w);
                let (.., w) = run(SimConfig::default());
                bw = bw.min(w);
            }
            let devs: Vec<f64> = ofcts
                .iter()
                .zip(&bfcts)
                .filter_map(|(o, b)| Some((b.as_ref()? - o.as_ref()?).abs() / o.as_ref()?))
                .collect();
            let mean_dev = devs.iter().sum::<f64>() / devs.len().max(1) as f64;
            println!(
                "seed {seed}: drops {od}/{bd} tx {otx}/{btx} wall {:.2}ms/{:.2}ms \
                 speedup {:.2}x mean_dev {:.4}",
                ow * 1e3,
                bw * 1e3,
                (btx as f64 / bw) / (otx as f64 / ow),
                mean_dev
            );
        }
    }

    #[test]
    fn pkt_burst_scenario_runs_loss_free_with_bursts() {
        let horizon = SimTime::from_secs(10);
        let s = pkt_burst_scenario(9, 24, 8, horizon);
        assert_eq!(
            s.explicit_flows
                .iter()
                .filter(|(_, f)| f.fidelity == Fidelity::Packet)
                .count(),
            8
        );
        let mut sim = Simulation::new(s, SimConfig::default()).expect("valid scenario");
        let r = sim.run();
        assert_eq!(r.pkt_flows, 8);
        let h = sim.hybrid().expect("hybrid attached");
        assert_eq!(h.plane().drops(), 0, "the loss-free premise must hold");
        assert!(h.plane().bursts_formed() > 0, "batching must engage");
    }

    #[test]
    fn wall_formatting() {
        assert_eq!(fmt_wall(0.0123), "12.3 ms");
        assert_eq!(fmt_wall(2.5), "2.50 s");
    }
}
