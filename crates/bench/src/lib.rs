//! Shared harness for the Horse experiment suite (DESIGN.md §5).
//!
//! Each `exp_*` binary regenerates one experiment's table; the Criterion
//! benches in `benches/` track the same code paths as regression
//! benchmarks. EXPERIMENTS.md records paper-expectation vs measured.

#![warn(missing_docs)]

use horse::prelude::*;

/// Builds the standard IXP scenario used across E1/E2/E5:
/// `members` member routers on an edge/core fabric, gravity traffic at
/// `load_factor` × (40 Mbps per member), megabyte-scale heavy-tailed
/// flows.
pub fn ixp_scenario(
    members: usize,
    load_factor: f64,
    policy: PolicySpec,
    horizon: SimTime,
    seed: u64,
) -> Scenario {
    let mut params = IxpScenarioParams::default();
    params.fabric.members = members;
    params.fabric.edge_switches = (members / 25).clamp(2, 16);
    params.fabric.core_switches = (members / 100).clamp(2, 4);
    // uniform fast access ports: the sweep measures simulator cost, and an
    // oversubscribed tail member would measure congestion pile-up instead
    params.fabric.member_port_speeds = vec![Rate::gbps(10.0)];
    params.offered_bps = members as f64 * 40e6 * load_factor;
    params.zipf_alpha = 1.0;
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.3,
        min_bytes: 1_000_000,
        max_bytes: 1_000_000_000,
    };
    params.policy = policy;
    params.horizon = horizon;
    params.seed = seed;
    Scenario::ixp(&params)
}

/// The default experiment policy: ECMP load balancing.
pub fn lb_policy() -> PolicySpec {
    PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp })
}

/// "Basic forwarding based on source and destination MAC" (paper).
pub fn mac_policy() -> PolicySpec {
    PolicySpec::new().with(PolicyRule::MacForwarding)
}

/// Runs a scenario through the fluid plane and returns the results.
pub fn run_fluid(scenario: Scenario, config: SimConfig) -> SimResults {
    let mut sim = Simulation::new(scenario, config).expect("valid scenario");
    sim.run()
}

/// The incremental-allocation config used for scale experiments.
pub fn fast_config() -> SimConfig {
    SimConfig::default()
        .with_alloc_mode(AllocMode::Incremental)
        .with_stats_epoch(Some(SimDuration::from_secs(1)))
}

/// A large IXP scenario driven by synchronized *waves* of transfers —
/// the shuffle-like shape that motivates epoch batching: every wave
/// drops `flows_per_wave` greedy arrivals onto a single timestamp, and
/// the edge→core uplinks are oversubscribed, so every arrival and every
/// completion shifts the max-min shares of whole trunk components. The
/// per-event cadence therefore pays one allocator run *and a round of
/// completion rescheduling* per event, while the epoch-batched loop pays
/// one run per wave; the flows are equal-sized, so completions arrive in
/// waves too. Traffic is spread round-robin over the edges, so each wave
/// decomposes into per-trunk allocation components — the shape the
/// `engine_threads` worker pool parallelizes over.
pub fn wave_ixp_scenario(
    members: usize,
    waves: usize,
    flows_per_wave: usize,
    size: ByteSize,
    horizon: SimTime,
) -> Scenario {
    let fabric = builders::ixp_fabric(&builders::IxpFabricParams {
        members,
        edge_switches: (members / 25).clamp(2, 16),
        core_switches: (members / 100).clamp(2, 4),
        // uniform fast access ports + tight uplinks: the waves contend at
        // the fabric trunks, not at a lucky member's slow port
        member_port_speeds: vec![Rate::gbps(10.0)],
        uplink_speed: Rate::gbps(40.0),
        ..Default::default()
    });
    let mut s = Scenario::bare(fabric.topology, horizon);
    s.members = fabric.members;
    s.policy = lb_policy();
    for w in 0..waves {
        let at = SimTime::from_millis(50 + 100 * w as u64);
        for i in 0..flows_per_wave {
            // src walks the members; dst sits half the ring away, so
            // every flow crosses the fabric and srcs/dsts stay spread.
            let src = i % members;
            let dst = (i + members / 2 + (i / members)) % members;
            let dst = if dst == src { (dst + 1) % members } else { dst };
            let spec = s
                .flow_between(
                    s.members[src],
                    s.members[dst],
                    AppClass::Https,
                    (4000 + w * 1500 + i) as u16,
                    Some(size),
                    DemandModel::Greedy,
                )
                .expect("member pair resolves");
            s.explicit_flows.push((at, spec));
        }
    }
    s
}

/// Formats a wall-clock duration for table cells.
pub fn fmt_wall(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ixp_scenario_builds_and_runs() {
        let s = ixp_scenario(25, 1.0, lb_policy(), SimTime::from_secs(2), 3);
        let r = run_fluid(s, fast_config());
        assert!(r.flows_admitted > 0);
        assert!(r.events > 0);
    }

    #[test]
    fn policies_build() {
        assert_eq!(lb_policy().policies.len(), 1);
        assert_eq!(mac_policy().policies.len(), 1);
    }

    #[test]
    fn wave_scenario_batches_arrivals() {
        let s = wave_ixp_scenario(16, 2, 8, ByteSize::mib(4), SimTime::from_secs(1));
        assert_eq!(s.explicit_flows.len(), 16);
        let first_wave_at = s.explicit_flows[0].0;
        assert_eq!(
            s.explicit_flows
                .iter()
                .filter(|(at, _)| *at == first_wave_at)
                .count(),
            8,
            "a whole wave shares one timestamp"
        );
        let r = run_fluid(s, SimConfig::default().with_stats_epoch(None));
        assert_eq!(r.flows_admitted, 16);
        assert_eq!(r.flows_completed, 16);
        assert!(r.max_epoch_batch >= 8, "waves form epoch batches");
        assert!(r.realloc_saved() > 0, "batching saves allocator runs");
    }

    #[test]
    fn wall_formatting() {
        assert_eq!(fmt_wall(0.0123), "12.3 ms");
        assert_eq!(fmt_wall(2.5), "2.50 s");
    }
}
