//! Shared harness for the Horse experiment suite (DESIGN.md §5).
//!
//! Each `exp_*` binary regenerates one experiment's table; the Criterion
//! benches in `benches/` track the same code paths as regression
//! benchmarks. EXPERIMENTS.md records paper-expectation vs measured.

#![warn(missing_docs)]

use horse::prelude::*;

/// Builds the standard IXP scenario used across E1/E2/E5:
/// `members` member routers on an edge/core fabric, gravity traffic at
/// `load_factor` × (40 Mbps per member), megabyte-scale heavy-tailed
/// flows.
pub fn ixp_scenario(
    members: usize,
    load_factor: f64,
    policy: PolicySpec,
    horizon: SimTime,
    seed: u64,
) -> Scenario {
    let mut params = IxpScenarioParams::default();
    params.fabric.members = members;
    params.fabric.edge_switches = (members / 25).clamp(2, 16);
    params.fabric.core_switches = (members / 100).clamp(2, 4);
    // uniform fast access ports: the sweep measures simulator cost, and an
    // oversubscribed tail member would measure congestion pile-up instead
    params.fabric.member_port_speeds = vec![Rate::gbps(10.0)];
    params.offered_bps = members as f64 * 40e6 * load_factor;
    params.zipf_alpha = 1.0;
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.3,
        min_bytes: 1_000_000,
        max_bytes: 1_000_000_000,
    };
    params.policy = policy;
    params.horizon = horizon;
    params.seed = seed;
    Scenario::ixp(&params)
}

/// The default experiment policy: ECMP load balancing.
pub fn lb_policy() -> PolicySpec {
    PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp })
}

/// "Basic forwarding based on source and destination MAC" (paper).
pub fn mac_policy() -> PolicySpec {
    PolicySpec::new().with(PolicyRule::MacForwarding)
}

/// Runs a scenario through the fluid plane and returns the results.
pub fn run_fluid(scenario: Scenario, config: SimConfig) -> SimResults {
    let mut sim = Simulation::new(scenario, config).expect("valid scenario");
    sim.run()
}

/// The incremental-allocation config used for scale experiments.
pub fn fast_config() -> SimConfig {
    SimConfig::default()
        .with_alloc_mode(AllocMode::Incremental)
        .with_stats_epoch(Some(SimDuration::from_secs(1)))
}

/// Formats a wall-clock duration for table cells.
pub fn fmt_wall(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.1} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ixp_scenario_builds_and_runs() {
        let s = ixp_scenario(25, 1.0, lb_policy(), SimTime::from_secs(2), 3);
        let r = run_fluid(s, fast_config());
        assert!(r.flows_admitted > 0);
        assert!(r.events > 0);
    }

    #[test]
    fn policies_build() {
        assert_eq!(lb_policy().policies.len(), 1);
        assert_eq!(mac_policy().policies.len(), 1);
    }

    #[test]
    fn wall_formatting() {
        assert_eq!(fmt_wall(0.0123), "12.3 ms");
        assert_eq!(fmt_wall(2.5), "2.50 s");
    }
}
