//! Criterion bench behind experiment E2: fluid-plane cost vs offered load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse::prelude::*;
use horse_bench::{fast_config, ixp_scenario, lb_policy, run_fluid};
use std::hint::black_box;

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_load");
    group.sample_size(10);
    for factor in [0.5f64, 1.0, 2.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("x{factor}")),
            &factor,
            |b, &factor| {
                b.iter(|| {
                    let s = ixp_scenario(50, factor, lb_policy(), SimTime::from_secs(2), 2);
                    black_box(run_fluid(s, fast_config()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_load);
criterion_main!(benches);
