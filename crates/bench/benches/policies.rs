//! Criterion bench behind experiment E5: policy-configuration cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse::prelude::*;
use horse_bench::{fast_config, ixp_scenario, run_fluid};
use std::hint::black_box;

fn config(level: usize) -> (&'static str, PolicySpec) {
    match level {
        0 => (
            "mac_forwarding",
            PolicySpec::new().with(PolicyRule::MacForwarding),
        ),
        1 => (
            "mac_learning",
            PolicySpec::new().with(PolicyRule::MacLearning),
        ),
        2 => (
            "load_balancing",
            PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp }),
        ),
        _ => {
            let mut spec = PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp });
            for i in 0..5 {
                spec = spec.with(PolicyRule::AppPeering {
                    src: format!("m{}", i * 2 + 1),
                    dst: format!("m{}", i * 2 + 2),
                    app: AppClass::Http,
                    path_rank: 1,
                });
                spec = spec.with(PolicyRule::RateLimit {
                    src: format!("m{}", i * 2 + 11),
                    dst: format!("m{}", i * 2 + 12),
                    rate_mbps: 500.0,
                });
            }
            ("full_mix", spec)
        }
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_policies");
    group.sample_size(10);
    for level in 0..4usize {
        let (label, _) = config(level);
        group.bench_with_input(BenchmarkId::from_parameter(label), &level, |b, &level| {
            b.iter(|| {
                let (_, policy) = config(level);
                let s = ixp_scenario(50, 1.0, policy, SimTime::from_secs(2), 4);
                black_box(run_fluid(s, fast_config()))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
