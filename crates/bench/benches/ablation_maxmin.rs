//! Criterion bench behind ablation A1: full vs incremental max-min
//! recomputation at fixed scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse::prelude::*;
use horse_bench::{ixp_scenario, lb_policy, run_fluid};
use std::hint::black_box;

fn bench_alloc_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_maxmin");
    group.sample_size(10);
    for (label, mode) in [
        ("full", AllocMode::Full),
        ("incremental", AllocMode::Incremental),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let s = ixp_scenario(100, 1.0, lb_policy(), SimTime::from_secs(2), 5);
                let cfg = SimConfig::default().with_alloc_mode(mode);
                black_box(run_fluid(s, cfg))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alloc_modes);
criterion_main!(benches);
