//! Batch-runner throughput: how many sweep runs per second the
//! horse-lab executor sustains at 1, 4 and all-CPU worker threads.
//! Seeds the perf trajectory for future scaling PRs (sharding,
//! multi-backend, distributed runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse_lab::prelude::*;
use std::hint::black_box;

fn sweep_spec() -> SweepSpec {
    SweepSpec::from_toml(
        r#"
        name = "bench"
        replicates = 2
        [scenario]
        kind = "ixp"
        members = 10
        horizon_secs = 0.5
        [axes]
        ctrl_latency_us = [0, 500, 1000, 10000]
        "#,
    )
    .expect("bench spec parses")
}

fn bench_runner(c: &mut Criterion) {
    let spec = sweep_spec();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    let mut candidates = vec![1usize, 4, max_threads];
    let mut seen = std::collections::HashSet::new();
    candidates.retain(|t| seen.insert(*t));
    for threads in candidates {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let report = run_sweep(&spec, threads).expect("campaign runs");
                    assert_eq!(report.runs.len(), 8);
                    black_box(report)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runner);
criterion_main!(benches);
