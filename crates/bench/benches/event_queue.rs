//! Micro-benchmark of the future event list — the "fast event loop" the
//! whole simulator stands on (repro hint: flow-level scalability is an
//! event-queue throughput story).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse::events::EventQueue;
use horse::types::SimTime;
use std::hint::black_box;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                // deterministic pseudo-random times
                let mut x = 0x9e3779b97f4a7c15u64;
                for i in 0..n as u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.schedule_at(SimTime::from_nanos(x % 1_000_000_000), i);
                }
                let mut acc = 0u64;
                while let Some(e) = q.pop() {
                    acc = acc.wrapping_add(e.event);
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("cancel_heavy", n), &n, |b, &n| {
            b.iter(|| {
                let mut q: EventQueue<u64> = EventQueue::new();
                let handles: Vec<_> = (0..n as u64)
                    .map(|i| q.schedule_at(SimTime::from_nanos(i), i))
                    .collect();
                // cancel every other event (the completion-reschedule
                // pattern of the fluid plane)
                for h in handles.iter().step_by(2) {
                    q.cancel(*h);
                }
                let mut count = 0u64;
                while q.pop().is_some() {
                    count += 1;
                }
                black_box(count)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
