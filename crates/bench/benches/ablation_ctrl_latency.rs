//! Criterion bench behind ablation A2: simulation cost under different
//! control-channel latencies with a reactive controller (higher latency ⇒
//! more queued control events per flow, same asymptotics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse::prelude::*;
use horse_bench::{ixp_scenario, run_fluid};
use std::hint::black_box;

fn bench_ctrl_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_ctrl_latency");
    group.sample_size(10);
    for lat_us in [0u64, 1_000, 10_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{lat_us}us")),
            &lat_us,
            |b, &lat_us| {
                b.iter(|| {
                    let policy = PolicySpec::new().with(PolicyRule::MacLearning);
                    let s = ixp_scenario(25, 1.0, policy, SimTime::from_secs(2), 6);
                    let cfg =
                        SimConfig::default().with_ctrl_latency(SimDuration::from_micros(lat_us));
                    black_box(run_fluid(s, cfg))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ctrl_latency);
criterion_main!(benches);
