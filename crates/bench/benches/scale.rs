//! Criterion bench behind experiment E1a: fluid-plane cost vs fabric size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use horse::prelude::*;
use horse_bench::{fast_config, ixp_scenario, lb_policy, run_fluid};
use std::hint::black_box;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_scale");
    group.sample_size(10);
    for members in [25usize, 50, 100, 200] {
        group.bench_with_input(
            BenchmarkId::from_parameter(members),
            &members,
            |b, &members| {
                b.iter(|| {
                    let s = ixp_scenario(members, 1.0, lb_policy(), SimTime::from_secs(2), 1);
                    black_box(run_fluid(s, fast_config()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
