//! Criterion bench behind experiment E3/E1b: the two planes on the same
//! workload — the measured gap *is* the paper's headline trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use horse::compare::{compare_planes, materialize_workload};
use horse::controlplane::PolicyGenerator;
use horse::packetsim::engine::{PacketNet, PacketSimConfig};
use horse::prelude::*;
use std::hint::black_box;

fn small_scenario() -> Scenario {
    let mut params = IxpScenarioParams::default();
    params.fabric.members = 8;
    params.fabric.member_port_speeds = vec![Rate::mbps(200.0)];
    params.fabric.uplink_speed = Rate::gbps(1.0);
    params.offered_bps = 8.0 * 40e6;
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.3,
        min_bytes: 100_000,
        max_bytes: 10_000_000,
    };
    params.horizon = SimTime::from_secs(3);
    params.seed = 7;
    let mut s = Scenario::ixp(&params);
    materialize_workload(&mut s, 50);
    s
}

fn bench_planes(c: &mut Criterion) {
    let scenario = small_scenario();
    let mut group = c.benchmark_group("e3_planes");
    group.sample_size(10);

    group.bench_function("fluid", |b| {
        b.iter(|| {
            let mut s = scenario.clone();
            s.workload = None;
            let mut sim = Simulation::new(s, SimConfig::default()).expect("valid");
            black_box(sim.run())
        });
    });

    group.bench_function("packet", |b| {
        b.iter(|| {
            let mut controller = PolicyGenerator::new(scenario.policy.clone(), &scenario.topology)
                .expect("valid policy");
            let specs: Vec<_> = scenario
                .explicit_flows
                .iter()
                .filter_map(|(at, f)| {
                    use horse::packetsim::engine::PktFlowSpec;
                    use horse::packetsim::source::{SourceKind, TcpState};
                    let size = f.size?;
                    let source = match f.demand {
                        horse::dataplane::DemandModel::Greedy => SourceKind::Tcp(TcpState::new()),
                        horse::dataplane::DemandModel::Cbr(r) => SourceKind::Cbr {
                            rate_bps: r.as_bps(),
                        },
                    };
                    Some(PktFlowSpec {
                        key: f.key,
                        src: f.src,
                        dst: f.dst,
                        size,
                        start: *at,
                        source,
                    })
                })
                .collect();
            let net = PacketNet::new(scenario.topology.clone(), PacketSimConfig::default());
            black_box(net.run(&mut controller, specs, scenario.horizon))
        });
    });
    group.finish();

    // one full comparison, printed once so bench logs carry the numbers
    let report = compare_planes(&scenario, SimConfig::default());
    println!("accuracy snapshot: {}", report.row());
}

criterion_group!(benches, bench_planes);
criterion_main!(benches);
