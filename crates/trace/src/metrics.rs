//! The metrics registry: named counters, gauges and histograms.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero allocation on the hot path.** Registering a metric
//!    allocates (name interning, one `Arc` per cell); incrementing one
//!    is a single `Option` branch plus a relaxed atomic op. A disabled
//!    registry hands out no-op handles whose updates are one branch.
//! 2. **Determinism-safe snapshots.** A [`MetricsSnapshot`] contains
//!    only what the instrumented code put in — if the instrumented
//!    quantities are deterministic (event counts, component sizes,
//!    queue compactions), the snapshot is bit-identical across runs,
//!    machines and thread counts, and may be embedded in reproducible
//!    reports. Wall-clock derived quantities belong in [`crate::span`],
//!    never here.
//! 3. **Shared handles.** Handles are cheap clones (an `Option<Arc>`);
//!    subsystems keep their own copies and the registry keeps the
//!    authoritative name → cell table for snapshotting.

use serde::{Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Power-of-two histogram buckets: bucket `b` holds values whose bit
/// length is `b` (bucket 0 holds the value 0), so `u64::BITS + 1` covers
/// every input with no configuration.
const HIST_BUCKETS: usize = (u64::BITS + 1) as usize;

struct CounterCell(AtomicU64);

/// Gauge cells store `f64` bit patterns.
struct GaugeCell(AtomicU64);

struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A monotonic counter handle. Cloning shares the underlying cell; a
/// handle from a disabled registry ignores updates.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A no-op handle (what a disabled registry returns).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.0.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A gauge handle: a last-write-wins `f64`, with a monotone-max variant
/// for peak tracking.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// A no-op handle (what a disabled registry returns).
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(c) = &self.0 {
            c.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the current value
    /// (peak-utilization style).
    #[inline]
    pub fn set_max(&self, v: f64) {
        let Some(c) = &self.0 else { return };
        let mut cur = c.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match c
                .0
                .compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value (0.0 for a no-op handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.0.load(Ordering::Relaxed)))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A power-of-two histogram handle for `u64` observations (batch sizes,
/// component flow counts). Fixed bucket layout — observing never
/// allocates.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// A no-op handle (what a disabled registry returns).
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let Some(c) = &self.0 else { return };
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        c.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(n={})", self.count())
    }
}

// Name keys are owned so a checkpoint dump (deserialized `String`s) can
// seed cells; registration is cold-path, updates never touch the table.
#[derive(Default)]
struct Inner {
    counters: Mutex<Vec<(String, Arc<CounterCell>)>>,
    gauges: Mutex<Vec<(String, Arc<GaugeCell>)>>,
    hists: Mutex<Vec<(String, Arc<HistCell>)>>,
}

/// The registry subsystems register their metrics into.
///
/// Cloning shares the registry. The default value is **disabled**: every
/// handle it returns is a no-op, so instrumented code needs no `if`s of
/// its own.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<Inner>>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A disabled registry: every handle is a no-op.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-attaches to) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::noop();
        };
        let mut v = inner.counters.lock().expect("metrics lock");
        if let Some((_, cell)) = v.iter().find(|(n, _)| n == name) {
            return Counter(Some(cell.clone()));
        }
        let cell = Arc::new(CounterCell(AtomicU64::new(0)));
        v.push((name.to_string(), cell.clone()));
        Counter(Some(cell))
    }

    /// Registers (or re-attaches to) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::noop();
        };
        let mut v = inner.gauges.lock().expect("metrics lock");
        if let Some((_, cell)) = v.iter().find(|(n, _)| n == name) {
            return Gauge(Some(cell.clone()));
        }
        let cell = Arc::new(GaugeCell(AtomicU64::new(0.0f64.to_bits())));
        v.push((name.to_string(), cell.clone()));
        Gauge(Some(cell))
    }

    /// Registers (or re-attaches to) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::noop();
        };
        let mut v = inner.hists.lock().expect("metrics lock");
        if let Some((_, cell)) = v.iter().find(|(n, _)| n == name) {
            return Histogram(Some(cell.clone()));
        }
        let cell = Arc::new(HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        });
        v.push((name.to_string(), cell.clone()));
        Histogram(Some(cell))
    }

    /// Flattens every metric into a name-sorted snapshot. Histograms
    /// expand to `name.count/.sum/.mean/.max/.p50/.p99` (quantiles are
    /// bucket upper bounds — deterministic, not exact).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<(String, f64)> = Vec::new();
        let Some(inner) = &self.inner else {
            return MetricsSnapshot { entries };
        };
        for (name, cell) in inner.counters.lock().expect("metrics lock").iter() {
            entries.push((name.to_string(), cell.0.load(Ordering::Relaxed) as f64));
        }
        for (name, cell) in inner.gauges.lock().expect("metrics lock").iter() {
            entries.push((
                name.to_string(),
                f64::from_bits(cell.0.load(Ordering::Relaxed)),
            ));
        }
        for (name, cell) in inner.hists.lock().expect("metrics lock").iter() {
            let count = cell.count.load(Ordering::Relaxed);
            let sum = cell.sum.load(Ordering::Relaxed);
            let mean = if count > 0 {
                sum as f64 / count as f64
            } else {
                0.0
            };
            entries.push((format!("{name}.count"), count as f64));
            entries.push((format!("{name}.sum"), sum as f64));
            entries.push((format!("{name}.mean"), mean));
            entries.push((
                format!("{name}.max"),
                cell.max.load(Ordering::Relaxed) as f64,
            ));
            entries.push((format!("{name}.p50"), bucket_quantile(cell, count, 0.50)));
            entries.push((format!("{name}.p99"), bucket_quantile(cell, count, 0.99)));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

/// A raw dump of one histogram cell (full bucket array, not the lossy
/// quantile view), for checkpoint continuation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistDump {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts (`u64::BITS + 1` power-of-two buckets).
    pub buckets: Vec<u64>,
}

horse_types::impl_snap_struct!(HistDump {
    count,
    sum,
    max,
    buckets,
});

/// A raw, name-sorted dump of every registry cell — unlike
/// [`MetricsSnapshot`] it is lossless (histogram buckets survive), so a
/// resumed simulation can seed a fresh registry and end the run with the
/// exact counters an uninterrupted run would report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsDump {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name, as `f64` bit patterns.
    pub gauges: Vec<(String, u64)>,
    /// Histogram cells by name.
    pub hists: Vec<(String, HistDump)>,
}

horse_types::impl_snap_struct!(MetricsDump {
    counters,
    gauges,
    hists,
});

impl MetricsRegistry {
    /// Dumps every cell's raw state, sorted by name (canonical: two
    /// registries holding the same values dump byte-identically under
    /// [`horse_types::Snap`] regardless of registration order).
    pub fn dump(&self) -> MetricsDump {
        let mut d = MetricsDump::default();
        let Some(inner) = &self.inner else {
            return d;
        };
        for (name, cell) in inner.counters.lock().expect("metrics lock").iter() {
            d.counters
                .push((name.to_string(), cell.0.load(Ordering::Relaxed)));
        }
        for (name, cell) in inner.gauges.lock().expect("metrics lock").iter() {
            d.gauges
                .push((name.to_string(), cell.0.load(Ordering::Relaxed)));
        }
        for (name, cell) in inner.hists.lock().expect("metrics lock").iter() {
            d.hists.push((
                name.to_string(),
                HistDump {
                    count: cell.count.load(Ordering::Relaxed),
                    sum: cell.sum.load(Ordering::Relaxed),
                    max: cell.max.load(Ordering::Relaxed),
                    buckets: cell
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                },
            ));
        }
        d.counters.sort_by(|a, b| a.0.cmp(&b.0));
        d.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        d.hists.sort_by(|a, b| a.0.cmp(&b.0));
        d
    }

    /// Seeds this registry from a dump: every dumped cell is created (or
    /// re-attached) and overwritten with the dumped value, so subsequent
    /// updates accumulate on top of the checkpointed prefix. No-op on a
    /// disabled registry.
    pub fn seed(&self, dump: &MetricsDump) {
        let Some(inner) = &self.inner else { return };
        for (name, v) in &dump.counters {
            let cell = {
                let mut t = inner.counters.lock().expect("metrics lock");
                match t.iter().find(|(n, _)| n == name) {
                    Some((_, c)) => c.clone(),
                    None => {
                        let c = Arc::new(CounterCell(AtomicU64::new(0)));
                        t.push((name.clone(), c.clone()));
                        c
                    }
                }
            };
            cell.0.store(*v, Ordering::Relaxed);
        }
        for (name, bits) in &dump.gauges {
            let cell = {
                let mut t = inner.gauges.lock().expect("metrics lock");
                match t.iter().find(|(n, _)| n == name) {
                    Some((_, c)) => c.clone(),
                    None => {
                        let c = Arc::new(GaugeCell(AtomicU64::new(0.0f64.to_bits())));
                        t.push((name.clone(), c.clone()));
                        c
                    }
                }
            };
            cell.0.store(*bits, Ordering::Relaxed);
        }
        for (name, h) in &dump.hists {
            let cell = {
                let mut t = inner.hists.lock().expect("metrics lock");
                match t.iter().find(|(n, _)| n == name) {
                    Some((_, c)) => c.clone(),
                    None => {
                        let c = Arc::new(HistCell {
                            count: AtomicU64::new(0),
                            sum: AtomicU64::new(0),
                            max: AtomicU64::new(0),
                            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                        });
                        t.push((name.clone(), c.clone()));
                        c
                    }
                }
            };
            cell.count.store(h.count, Ordering::Relaxed);
            cell.sum.store(h.sum, Ordering::Relaxed);
            cell.max.store(h.max, Ordering::Relaxed);
            for (slot, v) in cell.buckets.iter().zip(&h.buckets) {
                slot.store(*v, Ordering::Relaxed);
            }
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_enabled() {
            write!(f, "MetricsRegistry(enabled)")
        } else {
            write!(f, "MetricsRegistry(disabled)")
        }
    }
}

/// Upper bound of the bucket containing the `q`-quantile rank
/// (nearest-rank over bucket counts; bucket `b` covers values of bit
/// length `b`, so the bound is `2^b − 1`).
fn bucket_quantile(cell: &HistCell, count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((count as f64 - 1.0) * q).round() as u64;
    let mut seen = 0u64;
    for (b, bucket) in cell.buckets.iter().enumerate() {
        seen += bucket.load(Ordering::Relaxed);
        if seen > rank {
            return if b == 0 {
                0.0
            } else if b >= 64 {
                u64::MAX as f64
            } else {
                ((1u64 << b) - 1) as f64
            };
        }
    }
    cell.max.load(Ordering::Relaxed) as f64
}

/// A flattened, name-sorted view of a registry at one instant.
///
/// Serializes as a JSON map (`{"name": value, …}`), so it can ride
/// inside deterministic lab reports — provided the instrumented
/// quantities themselves are deterministic (see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// The `(name, value)` entries, sorted by name.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Looks up one metric by exact name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        Value::Map(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), Value::Number(serde::Number::Float(*v))))
                .collect(),
        )
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("MetricsSnapshot expects a map"))?;
        let mut entries = Vec::with_capacity(map.len());
        for (k, v) in map {
            let n = v
                .as_number()
                .ok_or_else(|| serde::Error::custom(format!("metric `{k}` is not a number")))?;
            entries.push((k.clone(), n.as_f64()));
        }
        Ok(MetricsSnapshot { entries })
    }

    fn absent() -> Option<Self> {
        // Older reports carry no metrics map; treat absence as empty so
        // they still deserialize.
        Some(MetricsSnapshot::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sim.events");
        c.inc();
        c.add(9);
        let g = reg.gauge("links.peak_utilization");
        g.set(0.5);
        g.set_max(0.9);
        g.set_max(0.2); // lower: ignored
        assert_eq!(c.get(), 10);
        assert_eq!(g.get(), 0.9);
        let snap = reg.snapshot();
        assert_eq!(snap.get("sim.events"), Some(10.0));
        assert_eq!(snap.get("links.peak_utilization"), Some(0.9));
    }

    #[test]
    fn same_name_shares_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.snapshot().get("x"), Some(2.0));
    }

    #[test]
    fn disabled_registry_is_noop() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().is_empty());
        // Default handles are no-ops too (what un-attached subsystems hold).
        Counter::default().inc();
        Gauge::default().set(1.0);
        Histogram::default().observe(1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("epoch.batch");
        for v in [0u64, 1, 1, 2, 3, 8, 1000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.get("epoch.batch.count"), Some(7.0));
        assert_eq!(snap.get("epoch.batch.sum"), Some(1015.0));
        assert_eq!(snap.get("epoch.batch.max"), Some(1000.0));
        // rank 3 of [0,1,1,2,3,8,1000] is 2 -> bucket b=2 -> bound 3
        assert_eq!(snap.get("epoch.batch.p50"), Some(3.0));
        // p99 rank is the largest sample's bucket (b=10 -> 1023)
        assert_eq!(snap.get("epoch.batch.p99"), Some(1023.0));
    }

    #[test]
    fn snapshot_is_sorted_and_serializes() {
        let reg = MetricsRegistry::new();
        reg.counter("zz").inc();
        reg.counter("aa").add(2);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let v = serde::to_value(&snap);
        let back = MetricsSnapshot::from_value(&v).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn gauge_set_max_races_keep_the_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("peak");
        std::thread::scope(|s| {
            for i in 0..4 {
                let g = g.clone();
                s.spawn(move || {
                    for k in 0..1000 {
                        g.set_max((i * 1000 + k) as f64);
                    }
                });
            }
        });
        assert_eq!(g.get(), 3999.0);
    }
}
