//! Wall-clock phase spans and the Chrome-trace / Perfetto exporter.
//!
//! A [`SpanLog`] records `(name, tid, start, duration)` spans relative
//! to its creation instant. Spans are **wall clock** and therefore
//! nondeterministic by nature; the determinism contract of the
//! workspace is that they are exported to their own file
//! ([`chrome_trace`]) and never folded into metric reports.

use std::fmt::Write as _;
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Span name (the Chrome-trace event name).
    pub name: &'static str,
    /// Thread lane the span renders on (0 = the main lane; solver
    /// workers use `1 + worker index`).
    pub tid: u32,
    /// Start, nanoseconds since the log's creation.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional `(key, value)` annotations (batch sizes, sim-times).
    pub args: Vec<(&'static str, u64)>,
}

/// An append-only span recorder with a fixed wall-clock origin.
#[derive(Debug)]
pub struct SpanLog {
    t0: Instant,
    spans: Vec<SpanRec>,
}

impl Default for SpanLog {
    fn default() -> Self {
        SpanLog::new()
    }
}

impl SpanLog {
    /// An empty log whose time origin is *now*.
    pub fn new() -> Self {
        SpanLog {
            t0: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// The log's wall-clock origin (for converting foreign `Instant`s).
    pub fn t0(&self) -> Instant {
        self.t0
    }

    /// Nanoseconds elapsed since the origin.
    pub fn now_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Converts an `Instant` into origin-relative nanoseconds
    /// (saturating to 0 for instants before the origin).
    pub fn instant_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.t0).as_nanos() as u64
    }

    /// Records a span.
    pub fn push(&mut self, name: &'static str, tid: u32, start_ns: u64, dur_ns: u64) {
        self.spans.push(SpanRec {
            name,
            tid,
            start_ns,
            dur_ns,
            args: Vec::new(),
        });
    }

    /// Records a span with annotations.
    pub fn push_args(
        &mut self,
        name: &'static str,
        tid: u32,
        start_ns: u64,
        dur_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        self.spans.push(SpanRec {
            name,
            tid,
            start_ns,
            dur_ns,
            args: args.to_vec(),
        });
    }

    /// The recorded spans, in append order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders one or more span logs as a Chrome-trace JSON document
/// (`{"traceEvents": […]}`) loadable by `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev). Each `(pid, label, log)` tuple
/// becomes one process, named by a metadata event; timestamps and
/// durations are microseconds with sub-microsecond fractions.
///
/// Each log keeps its own wall-clock origin, so spans of different
/// processes are **not** mutually aligned unless the caller created the
/// logs from one origin.
pub fn chrome_trace(processes: &[(u32, &str, &SpanLog)]) -> String {
    let total: usize = processes.iter().map(|(_, _, l)| l.len()).sum();
    let mut out = String::with_capacity(64 + total * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (pid, label, log) in processes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{pid}");
        out.push_str(",\"tid\":0,\"args\":{\"name\":\"");
        escape_json(label, &mut out);
        out.push_str("\"}}");
        for s in log.spans() {
            out.push_str(",{\"name\":\"");
            escape_json(s.name, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
            );
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in s.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(k, &mut out);
                    let _ = write!(out, "\":{v}");
                }
                out.push('}');
            }
            out.push('}');
        }
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_relative_to_origin() {
        let mut log = SpanLog::new();
        log.push("epoch", 0, 100, 50);
        log.push_args("realloc.solve", 1, 150, 25, &[("components", 3)]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.spans()[1].args, vec![("components", 3)]);
        assert!(log.now_ns() < 60_000_000_000, "sane elapsed");
        assert_eq!(log.instant_ns(log.t0()), 0);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let mut a = SpanLog::new();
        a.push_args("epoch", 0, 1_000, 2_500, &[("events", 4)]);
        a.push("realloc.discovery", 0, 1_100, 200);
        let mut b = SpanLog::new();
        b.push("realloc.solve", 2, 0, 999);
        let json = chrome_trace(&[(0, "run 0 \"x\"", &a), (1, "run 1", &b)]);
        let doc = serde_json::parse_value(&json).expect("chrome trace parses");
        let events = doc["traceEvents"].as_seq().expect("traceEvents array");
        // 2 metadata + 3 spans
        assert_eq!(events.len(), 5);
        assert_eq!(events[0]["ph"], "M");
        assert_eq!(events[1]["name"], "epoch");
        assert_eq!(events[1]["ph"], "X");
        assert_eq!(events[1]["args"]["events"], 4i64);
        // 1000 ns -> 1 µs
        assert!((events[1]["ts"].as_number().unwrap().as_f64() - 1.0).abs() < 1e-9);
        assert_eq!(events[4]["pid"], 1i64);
        assert_eq!(events[4]["tid"], 2i64);
    }

    #[test]
    fn empty_trace_still_parses() {
        let json = chrome_trace(&[]);
        let doc = serde_json::parse_value(&json).unwrap();
        assert_eq!(doc["traceEvents"].as_seq().unwrap().len(), 0);
    }
}
