//! `horse-trace` — the journal bisector CLI.
//!
//! ```text
//! horse-trace diff a.jsonl b.jsonl
//! ```
//!
//! Exit status: 0 when the journals are identical, 1 when they diverge
//! (the first diverging event is printed), 2 on usage or I/O errors.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use horse_trace::journal::{describe_divergence, first_divergence, read_journal, Divergence};

const USAGE: &str = "usage: horse-trace diff <a.jsonl> <b.jsonl>

Compares two sim-time event journals (as written by `horse-lab run
--journal DIR`) and reports the first diverging event.";

fn load(path: &str) -> Result<Vec<horse_trace::JournalEntry>, String> {
    let f = File::open(path).map_err(|e| format!("horse-trace: {path}: {e}"))?;
    read_journal(BufReader::new(f)).map_err(|e| format!("horse-trace: {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a_path, b_path) = match args.as_slice() {
        [cmd, a, b] if cmd == "diff" => (a.clone(), b.clone()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (a, b) = match (load(&a_path), load(&b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let d = first_divergence(&a, &b);
    println!("{}", describe_divergence(&d));
    match d {
        Divergence::Identical { .. } => ExitCode::SUCCESS,
        _ => ExitCode::from(1),
    }
}
