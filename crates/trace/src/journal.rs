//! The sim-time event journal and the first-divergence bisector.
//!
//! A journal is a JSONL stream with one line per **applied** simulation
//! event:
//!
//! ```text
//! {"n":17,"t":2500000000,"kind":"cable_down","d":"9a0b1c2d3e4f5061"}
//! ```
//!
//! * `n` — 1-based ordinal of the applied event,
//! * `t` — simulation time in nanoseconds (never wall clock),
//! * `kind` — snake_case event kind,
//! * `d` — running state digest (16 hex digits) *after* applying the
//!   event, chained from the previous entry with [`fold_digest`].
//!
//! Because the digest chains, two journals of the same scenario agree on
//! every prefix up to the first event whose application differed — which
//! is exactly what [`first_divergence`] reports and what the
//! `horse-trace diff` CLI prints when a CI determinism gate trips.

use std::fmt::Write as FmtWrite;
use std::io::{self, BufRead, Write};
use std::sync::{Arc, Mutex};

/// Folds one 64-bit value into a running digest (a splitmix64 step:
/// advance the state by the golden gamma plus the value, then run the
/// finalizer). Deterministic, order-sensitive, cheap, and free of the
/// all-zero fixed point.
pub fn fold_digest(d: u64, v: u64) -> u64 {
    let mut z = d.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One parsed journal line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// 1-based ordinal of the applied event.
    pub n: u64,
    /// Simulation time of the event, nanoseconds.
    pub t_ns: u64,
    /// Event kind, snake_case (`flow_arrival`, `stats_epoch`, …).
    pub kind: String,
    /// Chained state digest after applying the event.
    pub digest: u64,
}

impl JournalEntry {
    /// Sim-time in seconds, for human-facing messages.
    pub fn t_secs(&self) -> f64 {
        self.t_ns as f64 / 1e9
    }
}

/// Streaming JSONL writer. One [`JournalWriter::record`] call per
/// applied event; the writer never buffers entries itself, so it can
/// wrap a [`std::io::BufWriter`], an in-memory buffer, or
/// [`std::io::sink`] for overhead measurement.
#[derive(Debug)]
pub struct JournalWriter<W: Write> {
    out: W,
    next_n: u64,
    line: String,
}

impl<W: Write> JournalWriter<W> {
    /// Wraps a byte sink.
    pub fn new(out: W) -> Self {
        JournalWriter {
            out,
            next_n: 1,
            line: String::with_capacity(96),
        }
    }

    /// Number of entries recorded so far.
    pub fn entries(&self) -> u64 {
        self.next_n - 1
    }

    /// Continues ordinal numbering after `entries` already-written lines
    /// (checkpoint resume writes the journal *suffix*; concatenated to
    /// the prefix it must reproduce the straight-through file, ordinals
    /// included).
    pub fn continue_after(&mut self, entries: u64) {
        self.next_n = entries + 1;
    }

    /// Appends one entry, assigning the next ordinal.
    pub fn record(&mut self, t_ns: u64, kind: &str, digest: u64) -> io::Result<()> {
        self.line.clear();
        let _ = writeln!(
            self.line,
            "{{\"n\":{},\"t\":{},\"kind\":\"{}\",\"d\":\"{:016x}\"}}",
            self.next_n, t_ns, kind, digest
        );
        self.next_n += 1;
        self.out.write_all(self.line.as_bytes())
    }

    /// Flushes and returns the inner sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A cloneable in-memory byte sink, handy for capturing a journal from
/// a simulation that demands a `Write + Send` sink while the test still
/// holds a handle to read it back.
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// Copies the bytes written so far into a `String` (lossy UTF-8).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("shared buf poisoned")).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("shared buf poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn parse_line(line: &str, lineno: usize) -> io::Result<JournalEntry> {
    let bad = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("journal line {lineno}: {what}"),
        )
    };
    let v = serde_json::parse_value(line).map_err(|e| bad(&format!("not JSON ({e})")))?;
    let n = v["n"]
        .as_number()
        .and_then(|x| x.as_u64())
        .ok_or_else(|| bad("missing \"n\""))?;
    let t_ns = v["t"]
        .as_number()
        .and_then(|x| x.as_u64())
        .ok_or_else(|| bad("missing \"t\""))?;
    let kind = v["kind"].as_str().ok_or_else(|| bad("missing \"kind\""))?;
    let digest = v["d"]
        .as_str()
        .and_then(|d| u64::from_str_radix(d, 16).ok())
        .ok_or_else(|| bad("missing or malformed \"d\""))?;
    Ok(JournalEntry {
        n,
        t_ns,
        kind: kind.to_string(),
        digest,
    })
}

/// Parses a complete journal held in memory (blank lines skipped).
pub fn parse_journal(text: &str) -> io::Result<Vec<JournalEntry>> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line, i + 1)?);
    }
    Ok(out)
}

/// Reads and parses a journal from any buffered reader.
pub fn read_journal<R: BufRead>(r: R) -> io::Result<Vec<JournalEntry>> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line, i + 1)?);
    }
    Ok(out)
}

/// Outcome of comparing two journals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// Same length, every entry equal.
    Identical {
        /// Number of entries compared.
        events: usize,
    },
    /// First index at which the entries differ.
    Mismatch {
        /// 0-based index of the first differing pair.
        index: usize,
        /// Entry from the first journal.
        a: JournalEntry,
        /// Entry from the second journal.
        b: JournalEntry,
    },
    /// One journal is a strict prefix of the other.
    Truncated {
        /// Length of the shorter journal (== index of the first extra
        /// entry in the longer one).
        index: usize,
        /// Which side is longer: `'a'` or `'b'`.
        longer: char,
        /// The first entry the shorter journal is missing.
        next: JournalEntry,
    },
}

/// Compares two journals entry by entry and reports the first
/// divergence, if any.
pub fn first_divergence(a: &[JournalEntry], b: &[JournalEntry]) -> Divergence {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return Divergence::Mismatch {
                index: i,
                a: a[i].clone(),
                b: b[i].clone(),
            };
        }
    }
    if a.len() == b.len() {
        Divergence::Identical { events: common }
    } else {
        let longer = if a.len() > b.len() { 'a' } else { 'b' };
        let next = if longer == 'a' {
            &a[common]
        } else {
            &b[common]
        };
        Divergence::Truncated {
            index: common,
            longer,
            next: next.clone(),
        }
    }
}

/// Renders a [`Divergence`] as the one-paragraph human diagnosis used
/// by `horse-trace diff` and the CI determinism gate.
pub fn describe_divergence(d: &Divergence) -> String {
    match d {
        Divergence::Identical { events } => {
            format!("journals identical ({events} events)")
        }
        Divergence::Mismatch { index, a, b } => {
            let mut what = Vec::new();
            if a.t_ns != b.t_ns {
                what.push(format!("t={:.6}s vs t={:.6}s", a.t_secs(), b.t_secs()));
            }
            if a.kind != b.kind {
                what.push(format!("kind={} vs kind={}", a.kind, b.kind));
            }
            if a.digest != b.digest {
                what.push(format!("digest {:016x} vs {:016x}", a.digest, b.digest));
            }
            format!(
                "first divergence: event #{} at t={:.6}s, kind={} ({})",
                index + 1,
                a.t_secs(),
                a.kind,
                what.join("; "),
            )
        }
        Divergence::Truncated {
            index,
            longer,
            next,
        } => {
            format!(
                "first divergence: journals agree on {} events, then '{}' continues with event #{} at t={:.6}s, kind={}",
                index,
                longer,
                next.n,
                next.t_secs(),
                next.kind,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64, t_ns: u64, kind: &str, digest: u64) -> JournalEntry {
        JournalEntry {
            n,
            t_ns,
            kind: kind.to_string(),
            digest,
        }
    }

    #[test]
    fn fold_digest_is_order_sensitive() {
        let a = fold_digest(fold_digest(0, 1), 2);
        let b = fold_digest(fold_digest(0, 2), 1);
        assert_ne!(a, b);
        assert_ne!(fold_digest(0, 0), 0, "zero input still perturbs");
    }

    #[test]
    fn writer_and_parser_round_trip() {
        let mut w = JournalWriter::new(Vec::new());
        w.record(1_000, "flow_arrival", 0xdead_beef).unwrap();
        w.record(2_500_000_000, "cable_down", fold_digest(0xdead_beef, 7))
            .unwrap();
        assert_eq!(w.entries(), 2);
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.ends_with('\n'));
        let parsed = parse_journal(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], entry(1, 1_000, "flow_arrival", 0xdead_beef));
        assert_eq!(parsed[1].n, 2);
        assert_eq!(parsed[1].t_ns, 2_500_000_000);
        assert_eq!(parsed[1].kind, "cable_down");
        let reread = read_journal(io::Cursor::new(text.as_bytes())).unwrap();
        assert_eq!(reread, parsed);
    }

    #[test]
    fn shared_buf_captures_writes() {
        let buf = SharedBuf::new();
        let mut w = JournalWriter::new(buf.clone());
        w.record(5, "stats_epoch", 42).unwrap();
        w.finish().unwrap();
        let parsed = parse_journal(&buf.contents()).unwrap();
        assert_eq!(parsed, vec![entry(1, 5, "stats_epoch", 42)]);
    }

    #[test]
    fn malformed_lines_error_with_line_number() {
        let err =
            parse_journal("{\"n\":1,\"t\":2,\"kind\":\"x\",\"d\":\"00\"}\nnot json\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_journal("{\"n\":1,\"t\":2,\"kind\":\"x\"}\n").unwrap_err();
        assert!(err.to_string().contains("\"d\""), "{err}");
    }

    #[test]
    fn identical_journals_compare_identical() {
        let a = vec![entry(1, 10, "pkt", 1), entry(2, 20, "pkt", 2)];
        let d = first_divergence(&a, &a.clone());
        assert_eq!(d, Divergence::Identical { events: 2 });
        assert!(describe_divergence(&d).contains("identical (2 events)"));
    }

    #[test]
    fn mismatch_reports_first_differing_event() {
        let a = vec![
            entry(1, 10, "pkt", 1),
            entry(2, 2_500_000_000, "stats_epoch", 2),
            entry(3, 30, "pkt", 3),
        ];
        let mut b = a.clone();
        b[1] = entry(2, 2_500_000_000, "cable_down", 9);
        let d = first_divergence(&a, &b);
        match &d {
            Divergence::Mismatch { index, .. } => assert_eq!(*index, 1),
            other => panic!("expected mismatch, got {other:?}"),
        }
        let msg = describe_divergence(&d);
        assert!(msg.contains("event #2"), "{msg}");
        assert!(msg.contains("t=2.500000s"), "{msg}");
        assert!(msg.contains("kind=stats_epoch vs kind=cable_down"), "{msg}");
    }

    #[test]
    fn truncation_reports_the_first_missing_event() {
        let a = vec![entry(1, 10, "pkt", 1)];
        let b = vec![entry(1, 10, "pkt", 1), entry(2, 20, "expiry_scan", 2)];
        let d = first_divergence(&a, &b);
        assert_eq!(
            d,
            Divergence::Truncated {
                index: 1,
                longer: 'b',
                next: entry(2, 20, "expiry_scan", 2),
            }
        );
        let msg = describe_divergence(&d);
        assert!(msg.contains("agree on 1 events"), "{msg}");
        assert!(msg.contains("'b' continues"), "{msg}");
    }
}
