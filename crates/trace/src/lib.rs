//! # horse-trace
//!
//! The determinism-safe observability layer of the Horse workspace.
//! Three independent pieces, composable by the embedding simulator:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of monotonic counters, gauges
//!   and power-of-two histograms keyed by static names. Registration
//!   allocates; the increment path is a single branch plus one relaxed
//!   atomic op, so instrumented hot loops stay allocation-free (pinned
//!   down by `crates/dataplane/tests/alloc_free.rs`). Snapshots are
//!   sorted by name and contain **only deterministic quantities** — they
//!   may be embedded in reproducible reports.
//! * [`span`] — a [`SpanLog`] of wall-clock phase spans plus a
//!   [`chrome_trace`] exporter producing Chrome-trace / Perfetto JSON.
//!   Wall clock never feeds deterministic outputs: span logs live next
//!   to, never inside, metric reports.
//! * [`journal`] — a sim-time JSONL event journal (one line per applied
//!   simulation event: ordinal, timestamp, kind, chained state digest)
//!   and [`first_divergence`], the bisector behind `horse-trace diff`,
//!   which turns "the reports differ" into "first divergence: event #N
//!   at t=…, kind=…".
//!
//! The crate is a leaf: it knows nothing about the simulator and is
//! reusable by any deterministic event loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod metrics;
pub mod span;

pub use journal::{
    describe_divergence, first_divergence, fold_digest, parse_journal, read_journal, Divergence,
    JournalEntry, JournalWriter,
};
pub use metrics::{
    Counter, Gauge, HistDump, Histogram, MetricsDump, MetricsRegistry, MetricsSnapshot,
};
pub use span::{chrome_trace, SpanLog, SpanRec};
