//! Property tests for the match algebra the policy validator relies on:
//! `matches` ⊆-consistency with `is_subset_of`, and `overlaps` symmetry.

use horse_openflow::flow_match::FlowMatch;
use horse_types::{FlowKey, IpProtocol, Ipv4Net, MacAddr, PortNo};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_key() -> impl Strategy<Value = FlowKey> {
    (
        0u32..8,
        0u32..8,
        0u8..4,
        0u8..4,
        prop::sample::select(vec![IpProtocol::Tcp, IpProtocol::Udp]),
        prop::sample::select(vec![80u16, 443, 53, 1234]),
        0u16..4,
    )
        .prop_map(|(ms, md, is, id, proto, dport, sport)| FlowKey {
            eth_src: MacAddr::local_from_id(ms + 1),
            eth_dst: MacAddr::local_from_id(md + 1),
            eth_type: 0x0800,
            vlan: None,
            ip_src: Ipv4Addr::new(10, 0, is, 1),
            ip_dst: Ipv4Addr::new(10, 1, id, 1),
            ip_proto: proto,
            tp_src: 1000 + sport,
            tp_dst: dport,
        })
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        prop::option::of(0u32..8),
        prop::option::of(0u32..8),
        prop::option::of(prop::sample::select(vec![8u8, 16, 24, 32])),
        prop::option::of(prop::sample::select(vec![IpProtocol::Tcp, IpProtocol::Udp])),
        prop::option::of(prop::sample::select(vec![80u16, 443, 53, 1234])),
    )
        .prop_map(|(src, dst, plen, proto, dport)| {
            let mut m = FlowMatch::ANY;
            if let Some(s) = src {
                m = m.with_eth_src(MacAddr::local_from_id(s + 1));
            }
            if let Some(d) = dst {
                m = m.with_eth_dst(MacAddr::local_from_id(d + 1));
            }
            if let Some(l) = plen {
                m = m.with_ip_dst(Ipv4Net::new(Ipv4Addr::new(10, 1, 0, 0), l));
            }
            if let Some(p) = proto {
                m = m.with_ip_proto(p);
            }
            if let Some(p) = dport {
                m = m.with_tp_dst(p);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// If a is a subset of b, every key matching a must match b.
    #[test]
    fn subset_implies_match_containment(
        a in arb_match(),
        b in arb_match(),
        key in arb_key(),
        port in 1u16..4,
    ) {
        if a.is_subset_of(&b) && a.matches(PortNo(port), &key) {
            prop_assert!(
                b.matches(PortNo(port), &key),
                "a ⊆ b but b missed a key a matched: a={a} b={b} key={key}"
            );
        }
    }

    /// A key matching both matches means they overlap (contrapositive of
    /// disjointness).
    #[test]
    fn common_match_implies_overlap(
        a in arb_match(),
        b in arb_match(),
        key in arb_key(),
        port in 1u16..4,
    ) {
        if a.matches(PortNo(port), &key) && b.matches(PortNo(port), &key) {
            prop_assert!(a.overlaps(&b));
            prop_assert!(b.overlaps(&a), "overlap must be symmetric");
        }
    }

    /// Reflexivity and ANY-absorption.
    #[test]
    fn algebra_axioms(a in arb_match()) {
        prop_assert!(a.is_subset_of(&a));
        prop_assert!(a.is_subset_of(&FlowMatch::ANY));
        prop_assert!(a.overlaps(&a));
        prop_assert!(a.overlaps(&FlowMatch::ANY));
    }

    /// exact(key) matches its own key and is a subset of anything that
    /// matches the key.
    #[test]
    fn exact_is_the_bottom_element(key in arb_key(), b in arb_match(), port in 1u16..4) {
        let e = FlowMatch::exact(&key);
        prop_assert!(e.matches(PortNo(port), &key));
        if b.matches(PortNo(port), &key) && b.in_port.is_none() {
            prop_assert!(
                e.is_subset_of(&b),
                "exact(key) must be below any match containing key: b={b}"
            );
        }
    }
}
