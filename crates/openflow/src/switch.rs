//! The switch pipeline.
//!
//! [`OpenFlowSwitch`] glues tables, groups, meters and counters into the
//! classification engine both data planes share:
//!
//! * the **fluid plane** classifies a flow once per routing decision
//!   ([`OpenFlowSwitch::process`]) and later credits byte counts,
//! * the **packet plane** classifies every packet the same way.
//!
//! The default miss behaviour is *send to controller*, which is what gives
//! the paper its flow-setup dynamic (reactive controllers see a `FlowIn`
//! per new flow); switches can be flipped to drop-on-miss for proactive
//! deployments.

use crate::actions::{Action, Instruction};
use crate::flow_match::FlowMatch;
use crate::group::GroupEntry;
use crate::messages::{
    CtrlMsg, FlowModCommand, FlowStatsEntry, GroupMod, PortStatsEntry, StatsReply, StatsRequest,
    SwitchMsg, TableStatsEntry,
};
use crate::meter::MeterEntry;
use crate::table::{FlowTable, RemovalReason};
use horse_types::id::{GroupId, MeterId};
use horse_types::snap::{
    snap_via_serde, unsnap_via_serde, Snap, SnapError, SnapReader, SnapWriter,
};
use horse_types::{ByteSize, FlowKey, NodeId, PortNo, SimTime, TableId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Why the pipeline dropped a flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DropReason {
    /// Explicit drop action (blackholing, ACLs).
    Policy,
    /// Table miss with drop-on-miss configured.
    TableMiss,
    /// A group resolved to no live bucket.
    DeadGroup,
    /// Output port is down.
    PortDown,
    /// Pipeline exceeded the table-jump budget (mis-configured gotos).
    PipelineLoop,
}

/// Final verdict of a pipeline traversal.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Verdict {
    /// Forward out of these ports (usually one; several for flood/All).
    Forward(Vec<PortNo>),
    /// Punt to the controller (table miss or explicit).
    ToController,
    /// Drop.
    Drop(DropReason),
}

/// Everything a traversal produced: the verdict plus the attribution trail
/// (which entries matched, which meters apply, header rewrites).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct PipelineResult {
    /// The forwarding decision.
    pub verdict: Verdict,
    /// `(table, priority, match, cookie)` of each entry traversed, for
    /// later byte crediting.
    pub matched: Vec<(TableId, u16, FlowMatch, u64)>,
    /// Meters the flow passes through, in order.
    pub meters: Vec<MeterId>,
    /// The (possibly rewritten) flow key leaving the switch.
    pub key_out: FlowKey,
}

/// How a table miss is handled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissBehavior {
    /// Send a `FlowIn` to the controller (reactive mode, the default).
    ToController,
    /// Drop silently (proactive mode).
    Drop,
}

/// An abstracted OpenFlow switch.
pub struct OpenFlowSwitch {
    /// The node this switch instantiates.
    pub id: NodeId,
    tables: Vec<FlowTable>,
    groups: BTreeMap<GroupId, GroupEntry>,
    meters: BTreeMap<MeterId, MeterEntry>,
    port_state: HashMap<PortNo, bool>,
    port_counters: HashMap<PortNo, crate::counters::PortCounters>,
    /// Miss policy.
    pub miss_behavior: MissBehavior,
    /// Maximum table jumps per traversal (guards against goto loops).
    pub max_table_jumps: usize,
    /// Forwarding-state generation: bumped on every mutation that can
    /// change a [`classify`] outcome (flow/group/meter mods, port state,
    /// crash, expiry). Cached pipeline decisions stamped with an older
    /// generation are stale and must re-walk the tables.
    ///
    /// [`classify`]: OpenFlowSwitch::classify
    gen: u64,
}

impl OpenFlowSwitch {
    /// A switch with `num_tables` empty tables and reactive miss behaviour.
    pub fn new(id: NodeId, num_tables: usize, ports: &[PortNo]) -> Self {
        OpenFlowSwitch {
            id,
            tables: (0..num_tables.max(1)).map(|_| FlowTable::new()).collect(),
            groups: BTreeMap::new(),
            meters: BTreeMap::new(),
            port_state: ports.iter().map(|&p| (p, true)).collect(),
            port_counters: ports
                .iter()
                .map(|&p| (p, crate::counters::PortCounters::default()))
                .collect(),
            miss_behavior: MissBehavior::ToController,
            max_table_jumps: 8,
            gen: 0,
        }
    }

    /// The current forwarding-state generation. A [`PipelineResult`]
    /// cached at generation `g` is valid exactly while
    /// `self.generation() == g`.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Number of tables in the pipeline.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Read access to a table.
    pub fn table(&self, t: TableId) -> Option<&FlowTable> {
        self.tables.get(t.0 as usize)
    }

    /// Read access to a group.
    pub fn group(&self, g: GroupId) -> Option<&GroupEntry> {
        self.groups.get(&g)
    }

    /// Mutable access to a meter (packet plane consumes tokens).
    pub fn meter_mut(&mut self, m: MeterId) -> Option<&mut MeterEntry> {
        self.meters.get_mut(&m)
    }

    /// Read access to a meter.
    pub fn meter(&self, m: MeterId) -> Option<&MeterEntry> {
        self.meters.get(&m)
    }

    /// Is `port` up? Unknown ports count as down.
    pub fn port_up(&self, port: PortNo) -> bool {
        *self.port_state.get(&port).unwrap_or(&false)
    }

    /// Flips a port's state; returns the `PortStatus` notification.
    pub fn set_port_state(&mut self, port: PortNo, up: bool) -> SwitchMsg {
        self.port_state.insert(port, up);
        self.gen = self.gen.wrapping_add(1);
        SwitchMsg::PortStatus {
            switch: self.id,
            port,
            up,
        }
    }

    /// Crashes the switch: every flow table is replaced by a fresh empty
    /// one, groups and meters are cleared, and every port goes down —
    /// volatile state is lost exactly as on a real power cycle. Counters
    /// are *not* cleared (they model the observer's accounting, not the
    /// switch's memory). The crashed switch emits nothing; its neighbors
    /// report the failure.
    pub fn crash(&mut self) {
        for t in &mut self.tables {
            *t = FlowTable::new();
        }
        self.groups.clear();
        self.meters.clear();
        for up in self.port_state.values_mut() {
            *up = false;
        }
        self.gen = self.gen.wrapping_add(1);
    }

    /// Port counters (credited by the fluid plane's byte sync via
    /// [`credit_port_bytes`]; port-stats replies serve them).
    ///
    /// [`credit_port_bytes`]: OpenFlowSwitch::credit_port_bytes
    pub fn port_counters_mut(&mut self, port: PortNo) -> &mut crate::counters::PortCounters {
        self.port_counters.entry(port).or_default()
    }

    /// Credits one switch traversal's worth of integrated bytes to the
    /// port counters: received on `in_port`, transmitted on `out_port`
    /// (packet counts derived from `avg_packet`, like
    /// [`credit_bytes`]). This is what makes port-stats polling — the
    /// adaptive load balancer's feedback signal — observe fluid traffic.
    ///
    /// [`credit_bytes`]: OpenFlowSwitch::credit_bytes
    pub fn credit_port_bytes(
        &mut self,
        in_port: PortNo,
        out_port: PortNo,
        bytes: ByteSize,
        avg_packet: ByteSize,
    ) {
        let pkts = if avg_packet.as_bytes() == 0 {
            0
        } else {
            bytes.as_bytes() / avg_packet.as_bytes()
        };
        self.port_counters_mut(in_port)
            .credit_rx(pkts, bytes.as_bytes());
        self.port_counters_mut(out_port)
            .credit_tx(pkts, bytes.as_bytes());
    }

    /// Traverses the pipeline for a flow arriving on `in_port` with header
    /// `key` and credits classification counters (one "packet" per event).
    /// Byte crediting happens later via [`credit_bytes`].
    ///
    /// [`credit_bytes`]: OpenFlowSwitch::credit_bytes
    pub fn process(&mut self, in_port: PortNo, key: &FlowKey, now: SimTime) -> PipelineResult {
        let result = self.classify(in_port, key);
        self.commit_classification(&result, now);
        result
    }

    /// Counter-side-effect-free pipeline traversal. The fluid plane uses
    /// this to *explore* candidate paths (flood/DFS) and only commits the
    /// classification of the hops on the path it actually takes.
    pub fn classify(&self, in_port: PortNo, key: &FlowKey) -> PipelineResult {
        let mut result = PipelineResult {
            verdict: Verdict::Drop(DropReason::TableMiss),
            matched: Vec::new(),
            meters: Vec::new(),
            key_out: *key,
        };
        let mut table_idx = 0usize;
        let mut jumps = 0usize;
        let mut out_ports: Vec<PortNo> = Vec::new();
        let mut to_controller = false;
        let mut dropped: Option<DropReason> = None;
        let mut cur_key = *key;

        loop {
            if jumps > self.max_table_jumps {
                result.verdict = Verdict::Drop(DropReason::PipelineLoop);
                return result;
            }
            let Some(table) = self.tables.get(table_idx) else {
                break;
            };
            let Some(entry) = table.peek(in_port, &cur_key) else {
                // Table miss in table 0 triggers the miss behaviour; a miss
                // in a later table just ends the pipeline (OpenFlow
                // semantics: no goto target matched, actions so far apply).
                if table_idx == 0 && result.matched.is_empty() {
                    result.verdict = match self.miss_behavior {
                        MissBehavior::ToController => Verdict::ToController,
                        MissBehavior::Drop => Verdict::Drop(DropReason::TableMiss),
                    };
                    return result;
                }
                break;
            };
            result.matched.push((
                TableId(table_idx as u8),
                entry.priority,
                entry.matcher,
                entry.cookie,
            ));
            let instructions = &entry.instructions;
            let mut next_table: Option<usize> = None;
            for ins in instructions {
                match ins {
                    Instruction::Meter(m) => result.meters.push(*m),
                    Instruction::GotoTable(t) => next_table = Some(t.0 as usize),
                    Instruction::ApplyActions(actions) => {
                        for a in actions {
                            match a {
                                Action::Output(p) => {
                                    if *p == PortNo::CONTROLLER {
                                        to_controller = true;
                                    } else if *p == PortNo::FLOOD {
                                        let mut ps: Vec<PortNo> = self
                                            .port_state
                                            .iter()
                                            .filter(|&(&p2, &up)| up && p2 != in_port)
                                            .map(|(&p2, _)| p2)
                                            .collect();
                                        ps.sort();
                                        out_ports.extend(ps);
                                    } else {
                                        out_ports.push(*p);
                                    }
                                }
                                Action::Group(g) => {
                                    if let Some(ge) = self.groups.get(g) {
                                        let port_state = &self.port_state;
                                        // Per-switch hash seed: keeps
                                        // consecutive ECMP tiers from
                                        // polarizing onto correlated buckets.
                                        let chosen = ge.resolve(&cur_key, self.id.0 as u64, |p| {
                                            *port_state.get(&p).unwrap_or(&false)
                                        });
                                        if chosen.is_empty() {
                                            dropped = Some(DropReason::DeadGroup);
                                        }
                                        for bi in chosen {
                                            for ba in &ge.buckets[bi].actions {
                                                match ba {
                                                    Action::Output(p) => out_ports.push(*p),
                                                    Action::SetEthDst(m) => cur_key.eth_dst = *m,
                                                    Action::SetEthSrc(m) => cur_key.eth_src = *m,
                                                    Action::SetVlan(v) => cur_key.vlan = Some(*v),
                                                    Action::StripVlan => cur_key.vlan = None,
                                                    Action::Drop => {
                                                        dropped = Some(DropReason::Policy)
                                                    }
                                                    Action::Group(_) => { /* nested groups unsupported */
                                                    }
                                                }
                                            }
                                        }
                                    } else {
                                        dropped = Some(DropReason::DeadGroup);
                                    }
                                }
                                Action::SetEthDst(m) => cur_key.eth_dst = *m,
                                Action::SetEthSrc(m) => cur_key.eth_src = *m,
                                Action::SetVlan(v) => cur_key.vlan = Some(*v),
                                Action::StripVlan => cur_key.vlan = None,
                                Action::Drop => dropped = Some(DropReason::Policy),
                            }
                        }
                    }
                }
            }
            match next_table {
                Some(t) if t > table_idx => {
                    table_idx = t;
                    jumps += 1;
                }
                Some(_) => {
                    // goto must move forward; treat as loop guard
                    result.verdict = Verdict::Drop(DropReason::PipelineLoop);
                    return result;
                }
                None => break,
            }
        }

        result.key_out = cur_key;
        result.verdict = if let Some(r) = dropped {
            Verdict::Drop(r)
        } else if !out_ports.is_empty() {
            // de-dup, keep live ports only
            let mut seen = std::collections::HashSet::new();
            let live: Vec<PortNo> = out_ports
                .into_iter()
                .filter(|p| seen.insert(*p))
                .filter(|p| self.port_up(*p))
                .collect();
            if live.is_empty() {
                Verdict::Drop(DropReason::PortDown)
            } else {
                Verdict::Forward(live)
            }
        } else if to_controller {
            Verdict::ToController
        } else if result.matched.is_empty() {
            match self.miss_behavior {
                MissBehavior::ToController => Verdict::ToController,
                MissBehavior::Drop => Verdict::Drop(DropReason::TableMiss),
            }
        } else {
            // matched something that produced no output: explicit no-op ≈ drop
            Verdict::Drop(DropReason::Policy)
        };
        if to_controller && !matches!(result.verdict, Verdict::Forward(_)) {
            result.verdict = Verdict::ToController;
        }
        result
    }

    /// Credits the counters a [`classify`] traversal would have updated:
    /// one lookup+match per traversed table, one packet per matched entry,
    /// and a fresh `last_used` stamp (idle-timeout refresh). A miss credits
    /// a lookup on table 0 only.
    ///
    /// [`classify`]: OpenFlowSwitch::classify
    pub fn commit_classification(&mut self, res: &PipelineResult, now: SimTime) {
        self.commit_matched(&res.matched, now);
    }

    /// Like [`commit_classification`], but takes the matched-entry trail
    /// directly by borrow — the fluid engine's admission path commits from
    /// stored route hops without rebuilding (or cloning into) a
    /// [`PipelineResult`].
    ///
    /// [`commit_classification`]: OpenFlowSwitch::commit_classification
    pub fn commit_matched(&mut self, matched: &[(TableId, u16, FlowMatch, u64)], now: SimTime) {
        self.commit_matched_n(matched, 1, now);
    }

    /// Like [`commit_matched`], but credits `n` classification events at
    /// once — the packet plane's burst path commits the whole burst with
    /// one call so table lookup/match counters and idle-timeout stamps
    /// stay identical to `n` per-packet walks.
    ///
    /// [`commit_matched`]: OpenFlowSwitch::commit_matched
    pub fn commit_matched_n(
        &mut self,
        matched: &[(TableId, u16, FlowMatch, u64)],
        n: u64,
        now: SimTime,
    ) {
        if n == 0 {
            return;
        }
        if matched.is_empty() {
            if let Some(t0) = self.tables.get_mut(0) {
                t0.counters.lookups += n;
            }
            return;
        }
        for (t, prio, m, _) in matched {
            if let Some(table) = self.tables.get_mut(t.0 as usize) {
                table.counters.lookups += n;
                table.counters.matches += n;
                table.credit(*prio, m, n, ByteSize::ZERO, now);
            }
        }
    }

    /// Credits bytes (and derived packets) to previously matched entries —
    /// how the fluid plane keeps OpenFlow counters consistent with
    /// integrated flow volumes.
    pub fn credit_bytes(
        &mut self,
        matched: &[(TableId, u16, FlowMatch, u64)],
        bytes: ByteSize,
        avg_packet: ByteSize,
        now: SimTime,
    ) {
        let pkts = if avg_packet.as_bytes() == 0 {
            0
        } else {
            bytes.as_bytes() / avg_packet.as_bytes()
        };
        for (t, prio, m, _) in matched {
            if let Some(table) = self.tables.get_mut(t.0 as usize) {
                table.credit(*prio, m, pkts, bytes, now);
            }
        }
    }

    /// Applies a controller message, returning any immediate replies
    /// (stats, barrier, flow-removed notifications from deletes).
    pub fn apply(&mut self, msg: &CtrlMsg, now: SimTime) -> Vec<SwitchMsg> {
        // Any table/group/meter mutation can change future classifications;
        // stamp a new generation before applying (stats/barrier are
        // read-only and leave cached decisions valid).
        if matches!(
            msg,
            CtrlMsg::FlowMod(_) | CtrlMsg::GroupMod(_) | CtrlMsg::MeterMod(_)
        ) {
            self.gen = self.gen.wrapping_add(1);
        }
        match msg {
            CtrlMsg::FlowMod(fm) => {
                let t = fm.table.0 as usize;
                if t >= self.tables.len() {
                    return vec![];
                }
                match fm.command {
                    FlowModCommand::Add => {
                        self.tables[t].insert(fm.entry.clone(), now);
                        vec![]
                    }
                    FlowModCommand::Delete { strict } => {
                        let removed = self.tables[t].delete(
                            &fm.entry.matcher,
                            Some(fm.entry.priority),
                            strict,
                        );
                        removed
                            .into_iter()
                            .filter(|e| e.notify_removal)
                            .map(|e| SwitchMsg::FlowRemoved {
                                switch: self.id,
                                table: fm.table,
                                priority: e.priority,
                                matcher: e.matcher,
                                cookie: e.cookie,
                                reason: RemovalReason::Delete,
                                packets: e.counters.packets,
                                bytes: e.counters.bytes,
                            })
                            .collect()
                    }
                }
            }
            CtrlMsg::GroupMod(gm) => {
                match gm {
                    GroupMod::Add(g) => {
                        self.groups.insert(g.id, g.clone());
                    }
                    GroupMod::Delete(id) => {
                        self.groups.remove(id);
                    }
                }
                vec![]
            }
            CtrlMsg::MeterMod(mm) => {
                match mm {
                    crate::messages::MeterMod::Add { id, .. } => {
                        if let Some(e) = mm.to_entry() {
                            self.meters.insert(*id, e);
                        }
                    }
                    crate::messages::MeterMod::Delete(id) => {
                        self.meters.remove(id);
                    }
                }
                vec![]
            }
            CtrlMsg::StatsRequest(req) => vec![SwitchMsg::StatsReply {
                switch: self.id,
                reply: self.stats(*req),
            }],
            CtrlMsg::Barrier => vec![SwitchMsg::BarrierReply { switch: self.id }],
        }
    }

    /// Builds a statistics reply.
    pub fn stats(&self, req: StatsRequest) -> StatsReply {
        match req {
            StatsRequest::Flow(t) => {
                let rows = self
                    .tables
                    .get(t.0 as usize)
                    .map(|table| {
                        table
                            .entries()
                            .map(|e| FlowStatsEntry {
                                table: t,
                                priority: e.priority,
                                matcher: e.matcher,
                                cookie: e.cookie,
                                packets: e.counters.packets,
                                bytes: e.counters.bytes,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                StatsReply::Flow(rows)
            }
            StatsRequest::Port(which) => {
                let mut rows: Vec<PortStatsEntry> = self
                    .port_counters
                    .iter()
                    .filter(|(p, _)| which.map(|w| w == **p).unwrap_or(true))
                    .map(|(p, c)| PortStatsEntry {
                        port: *p,
                        rx_packets: c.rx_packets,
                        tx_packets: c.tx_packets,
                        rx_bytes: c.rx_bytes,
                        tx_bytes: c.tx_bytes,
                        drops: c.drops,
                    })
                    .collect();
                rows.sort_by_key(|r| r.port);
                StatsReply::Port(rows)
            }
            StatsRequest::Table => StatsReply::Table(
                self.tables
                    .iter()
                    .enumerate()
                    .map(|(i, t)| TableStatsEntry {
                        table: TableId(i as u8),
                        active_entries: t.len() as u64,
                        lookups: t.counters.lookups,
                        matches: t.counters.matches,
                    })
                    .collect(),
            ),
        }
    }

    /// Expires timed-out entries across all tables, emitting FlowRemoved
    /// notifications where requested.
    pub fn expire(&mut self, now: SimTime) -> Vec<SwitchMsg> {
        let mut out = Vec::new();
        let mut removed_any = false;
        for (i, table) in self.tables.iter_mut().enumerate() {
            for (e, reason) in table.expire(now) {
                removed_any = true;
                if e.notify_removal {
                    out.push(SwitchMsg::FlowRemoved {
                        switch: self.id,
                        table: TableId(i as u8),
                        priority: e.priority,
                        matcher: e.matcher,
                        cookie: e.cookie,
                        reason,
                        packets: e.counters.packets,
                        bytes: e.counters.bytes,
                    });
                }
            }
        }
        if removed_any {
            self.gen = self.gen.wrapping_add(1);
        }
        out
    }

    /// Serializes every piece of mutable switch state — tables (entries
    /// and counters), groups, meters (including token levels), port
    /// up/down state, port counters, miss behavior and the jump budget —
    /// in canonical order (groups/meters via their `BTreeMap`s, port maps
    /// key-sorted). The identity (`id`) is not included: it is re-derived
    /// from the topology on restore and used as a cross-check.
    pub fn snapshot_state(&self, w: &mut SnapWriter) {
        w.len_prefix(self.tables.len());
        for t in &self.tables {
            snap_via_serde(t, w);
        }
        w.len_prefix(self.groups.len());
        for (id, g) in &self.groups {
            id.snap(w);
            snap_via_serde(g, w);
        }
        w.len_prefix(self.meters.len());
        for (id, m) in &self.meters {
            id.snap(w);
            snap_via_serde(m, w);
        }
        self.port_state.snap(w);
        let mut ports: Vec<&PortNo> = self.port_counters.keys().collect();
        ports.sort();
        w.len_prefix(ports.len());
        for p in ports {
            p.snap(w);
            snap_via_serde(&self.port_counters[p], w);
        }
        w.u8(match self.miss_behavior {
            MissBehavior::ToController => 0,
            MissBehavior::Drop => 1,
        });
        self.max_table_jumps.snap(w);
        self.gen.snap(w);
    }

    /// Restores state captured by [`OpenFlowSwitch::snapshot_state`],
    /// replacing this switch's tables, groups, meters and port state
    /// wholesale.
    pub fn restore_state(&mut self, r: &mut SnapReader) -> Result<(), SnapError> {
        let n = r.len_prefix()?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            tables.push(unsnap_via_serde::<FlowTable>(r)?);
        }
        let n = r.len_prefix()?;
        let mut groups = BTreeMap::new();
        for _ in 0..n {
            let id = GroupId::unsnap(r)?;
            groups.insert(id, unsnap_via_serde::<GroupEntry>(r)?);
        }
        let n = r.len_prefix()?;
        let mut meters = BTreeMap::new();
        for _ in 0..n {
            let id = MeterId::unsnap(r)?;
            meters.insert(id, unsnap_via_serde::<MeterEntry>(r)?);
        }
        let port_state = HashMap::<PortNo, bool>::unsnap(r)?;
        let n = r.len_prefix()?;
        let mut port_counters = HashMap::with_capacity(n);
        for _ in 0..n {
            let p = PortNo::unsnap(r)?;
            port_counters.insert(p, unsnap_via_serde::<crate::counters::PortCounters>(r)?);
        }
        let at = r.position();
        let miss_behavior = match r.u8()? {
            0 => MissBehavior::ToController,
            1 => MissBehavior::Drop,
            other => return Err(SnapError::new(format!("bad MissBehavior {other}"), at)),
        };
        let max_table_jumps = usize::unsnap(r)?;
        let gen = u64::unsnap(r)?;
        self.tables = tables;
        self.groups = groups;
        self.meters = meters;
        self.port_state = port_state;
        self.port_counters = port_counters;
        self.miss_behavior = miss_behavior;
        self.max_table_jumps = max_table_jumps;
        self.gen = gen;
        Ok(())
    }

    /// The table-miss `FlowIn` message for a missed flow.
    pub fn flow_in(&self, in_port: PortNo, key: &FlowKey) -> SwitchMsg {
        SwitchMsg::FlowIn {
            switch: self.id,
            in_port,
            key: *key,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{Bucket, GroupType};
    use crate::messages::{FlowMod, MeterMod};
    use crate::table::FlowEntry;
    use horse_types::{MacAddr, Rate};
    use std::net::Ipv4Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
        )
    }

    fn switch(tables: usize) -> OpenFlowSwitch {
        OpenFlowSwitch::new(NodeId(1), tables, &[PortNo(1), PortNo(2), PortNo(3)])
    }

    #[test]
    fn miss_goes_to_controller_by_default() {
        let mut sw = switch(1);
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::ToController);
        assert!(r.matched.is_empty());
    }

    #[test]
    fn miss_drops_in_proactive_mode() {
        let mut sw = switch(1);
        sw.miss_behavior = MissBehavior::Drop;
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Drop(DropReason::TableMiss));
    }

    #[test]
    fn simple_forward() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::output(PortNo(2))],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Forward(vec![PortNo(2)]));
        assert_eq!(r.matched.len(), 1);
    }

    #[test]
    fn drop_action_wins() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::drop()],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Drop(DropReason::Policy));
    }

    #[test]
    fn forward_to_down_port_drops() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::output(PortNo(2))],
            ))),
            SimTime::ZERO,
        );
        sw.set_port_state(PortNo(2), false);
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Drop(DropReason::PortDown));
    }

    #[test]
    fn flood_excludes_ingress() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::output(PortNo::FLOOD)],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Forward(vec![PortNo(2), PortNo(3)]));
    }

    #[test]
    fn multi_table_goto_and_meter() {
        let mut sw = switch(2);
        sw.apply(
            &CtrlMsg::MeterMod(MeterMod::Add {
                id: MeterId(7),
                rate: Rate::mbps(500.0),
                burst: ByteSize::kib(64),
            }),
            SimTime::ZERO,
        );
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add,
                entry: FlowEntry::new(
                    10,
                    FlowMatch::ANY,
                    vec![
                        Instruction::Meter(MeterId(7)),
                        Instruction::GotoTable(TableId(1)),
                    ],
                ),
            }),
            SimTime::ZERO,
        );
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod {
                table: TableId(1),
                command: FlowModCommand::Add,
                entry: FlowEntry::new(5, FlowMatch::ANY, vec![Instruction::output(PortNo(3))]),
            }),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Forward(vec![PortNo(3)]));
        assert_eq!(r.meters, vec![MeterId(7)]);
        assert_eq!(r.matched.len(), 2);
    }

    #[test]
    fn backward_goto_is_a_loop() {
        let mut sw = switch(2);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod {
                table: TableId(1),
                command: FlowModCommand::Add,
                entry: FlowEntry::new(5, FlowMatch::ANY, vec![Instruction::GotoTable(TableId(1))]),
            }),
            SimTime::ZERO,
        );
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod {
                table: TableId(0),
                command: FlowModCommand::Add,
                entry: FlowEntry::new(5, FlowMatch::ANY, vec![Instruction::GotoTable(TableId(1))]),
            }),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Drop(DropReason::PipelineLoop));
    }

    #[test]
    fn group_select_forwards_one_port() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::GroupMod(GroupMod::Add(GroupEntry::ecmp(
                GroupId(1),
                &[PortNo(2), PortNo(3)],
            ))),
            SimTime::ZERO,
        );
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::group(GroupId(1))],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        match r.verdict {
            Verdict::Forward(ports) => {
                assert_eq!(ports.len(), 1);
                assert!(ports[0] == PortNo(2) || ports[0] == PortNo(3));
            }
            v => panic!("expected forward, got {v:?}"),
        }
    }

    #[test]
    fn group_failover_reroutes_when_port_dies() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::GroupMod(GroupMod::Add(GroupEntry {
                id: GroupId(2),
                group_type: GroupType::FastFailover,
                buckets: vec![Bucket::output(PortNo(2)), Bucket::output(PortNo(3))],
            })),
            SimTime::ZERO,
        );
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::group(GroupId(2))],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Forward(vec![PortNo(2)]));
        sw.set_port_state(PortNo(2), false);
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Forward(vec![PortNo(3)]));
    }

    #[test]
    fn missing_group_drops() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::group(GroupId(99))],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.verdict, Verdict::Drop(DropReason::DeadGroup));
    }

    #[test]
    fn rewrite_actions_update_key_out() {
        let mut sw = switch(1);
        let new_dst = MacAddr::local_from_id(42);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::ApplyActions(vec![
                    Action::SetEthDst(new_dst),
                    Action::SetVlan(100),
                    Action::Output(PortNo(2)),
                ])],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        assert_eq!(r.key_out.eth_dst, new_dst);
        assert_eq!(r.key_out.vlan, Some(100));
        assert_eq!(r.verdict, Verdict::Forward(vec![PortNo(2)]));
    }

    #[test]
    fn credit_bytes_reaches_matched_entries() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::output(PortNo(2))],
            ))),
            SimTime::ZERO,
        );
        let r = sw.process(PortNo(1), &key(), SimTime::ZERO);
        sw.credit_bytes(
            &r.matched,
            ByteSize::bytes(15000),
            ByteSize::bytes(1500),
            SimTime::from_secs(1),
        );
        if let StatsReply::Flow(rows) = sw.stats(StatsRequest::Flow(TableId(0))) {
            assert_eq!(rows[0].bytes, 15000);
            assert_eq!(rows[0].packets, 1 + 10); // 1 classify event + 10 derived
        } else {
            panic!("expected flow stats");
        }
    }

    #[test]
    fn stats_and_barrier_replies() {
        let mut sw = switch(1);
        let replies = sw.apply(&CtrlMsg::Barrier, SimTime::ZERO);
        assert!(matches!(replies[0], SwitchMsg::BarrierReply { .. }));
        let replies = sw.apply(&CtrlMsg::StatsRequest(StatsRequest::Table), SimTime::ZERO);
        assert!(matches!(
            replies[0],
            SwitchMsg::StatsReply {
                reply: StatsReply::Table(_),
                ..
            }
        ));
    }

    #[test]
    fn delete_with_notification() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(
                FlowEntry::new(10, FlowMatch::ANY, vec![Instruction::output(PortNo(2))])
                    .with_removal_notification()
                    .with_cookie(77),
            )),
            SimTime::ZERO,
        );
        let mut del = FlowMod::delete(FlowMatch::ANY);
        del.entry.priority = 10;
        let replies = sw.apply(&CtrlMsg::FlowMod(del), SimTime::from_secs(1));
        assert_eq!(replies.len(), 1);
        match &replies[0] {
            SwitchMsg::FlowRemoved { cookie, reason, .. } => {
                assert_eq!(*cookie, 77);
                assert_eq!(*reason, RemovalReason::Delete);
            }
            m => panic!("unexpected {m:?}"),
        }
    }

    #[test]
    fn expiry_emits_notifications() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(
                FlowEntry::new(10, FlowMatch::ANY, vec![Instruction::output(PortNo(2))])
                    .with_hard_timeout(horse_types::SimDuration::from_secs(5))
                    .with_removal_notification(),
            )),
            SimTime::ZERO,
        );
        assert!(sw.expire(SimTime::from_secs(4)).is_empty());
        let msgs = sw.expire(SimTime::from_secs(5));
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn snapshot_restore_round_trip_is_canonical_and_behavioral() {
        // Build a switch with every kind of mutable state: entries with
        // timeouts and credited counters, a meter with consumed tokens, a
        // select group, a downed port, and port counters.
        let mut sw = switch(2);
        sw.apply(
            &CtrlMsg::MeterMod(MeterMod::Add {
                id: MeterId(7),
                rate: Rate::mbps(500.0),
                burst: ByteSize::kib(64),
            }),
            SimTime::ZERO,
        );
        sw.meter_mut(MeterId(7))
            .unwrap()
            .try_consume(9_000, SimTime::from_millis(3));
        sw.apply(
            &CtrlMsg::GroupMod(GroupMod::Add(GroupEntry::ecmp(
                GroupId(1),
                &[PortNo(2), PortNo(3)],
            ))),
            SimTime::ZERO,
        );
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(
                FlowEntry::new(10, FlowMatch::ANY, vec![Instruction::group(GroupId(1))])
                    .with_idle_timeout(horse_types::SimDuration::from_secs(30))
                    .with_cookie(0xfeed),
            )),
            SimTime::from_millis(1),
        );
        let r = sw.process(PortNo(1), &key(), SimTime::from_millis(2));
        sw.credit_bytes(
            &r.matched,
            ByteSize::bytes(12_345),
            ByteSize::bytes(1000),
            SimTime::from_millis(2),
        );
        sw.set_port_state(PortNo(3), false);
        sw.credit_port_bytes(
            PortNo(1),
            PortNo(2),
            ByteSize::bytes(4500),
            ByteSize::bytes(1500),
        );
        sw.miss_behavior = MissBehavior::Drop;

        let mut w = horse_types::SnapWriter::new();
        sw.snapshot_state(&mut w);
        let bytes = w.into_bytes();

        // Restore into a bare switch (different table count, default
        // everything) and verify re-serialization is byte-identical.
        let mut restored = OpenFlowSwitch::new(NodeId(1), 1, &[]);
        let mut rd = horse_types::SnapReader::new(&bytes);
        restored.restore_state(&mut rd).unwrap();
        assert!(rd.is_exhausted());
        let mut w2 = horse_types::SnapWriter::new();
        restored.snapshot_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "round-trip byte-identical");

        // Behavioral equivalence: classification, stats, expiry.
        assert_eq!(restored.table_count(), 2);
        assert_eq!(restored.miss_behavior, MissBehavior::Drop);
        assert!(!restored.port_up(PortNo(3)));
        let (a, b) = (
            sw.process(PortNo(1), &key(), SimTime::from_millis(4)),
            restored.process(PortNo(1), &key(), SimTime::from_millis(4)),
        );
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.matched, b.matched);
        assert_eq!(
            format!("{:?}", sw.stats(StatsRequest::Flow(TableId(0)))),
            format!("{:?}", restored.stats(StatsRequest::Flow(TableId(0))))
        );
        assert_eq!(
            format!("{:?}", sw.stats(StatsRequest::Port(None))),
            format!("{:?}", restored.stats(StatsRequest::Port(None)))
        );
        // Meter token level survived (consumed + partially refilled).
        let t = SimTime::from_millis(10);
        let (ta, tb) = (
            sw.meter_mut(MeterId(7)).unwrap().tokens_at(t),
            restored.meter_mut(MeterId(7)).unwrap().tokens_at(t),
        );
        assert_eq!(ta.to_bits(), tb.to_bits(), "token state bit-identical");
    }

    #[test]
    fn generation_bumps_on_state_mutations_only() {
        let mut sw = switch(1);
        let g0 = sw.generation();
        // Read-only messages leave the generation alone.
        sw.apply(&CtrlMsg::Barrier, SimTime::ZERO);
        sw.apply(&CtrlMsg::StatsRequest(StatsRequest::Table), SimTime::ZERO);
        assert_eq!(sw.generation(), g0);
        // Classification and crediting are observations, not mutations.
        sw.process(PortNo(1), &key(), SimTime::ZERO);
        sw.credit_bytes(
            &[],
            ByteSize::bytes(1500),
            ByteSize::bytes(1500),
            SimTime::ZERO,
        );
        assert_eq!(sw.generation(), g0);
        // Flow-mod, group-mod, meter-mod, port flaps and crashes each bump.
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::output(PortNo(2))],
            ))),
            SimTime::ZERO,
        );
        let g1 = sw.generation();
        assert_ne!(g1, g0);
        sw.apply(
            &CtrlMsg::GroupMod(GroupMod::Add(GroupEntry::ecmp(GroupId(1), &[PortNo(2)]))),
            SimTime::ZERO,
        );
        let g2 = sw.generation();
        assert_ne!(g2, g1);
        sw.apply(
            &CtrlMsg::MeterMod(MeterMod::Add {
                id: MeterId(7),
                rate: Rate::mbps(500.0),
                burst: ByteSize::kib(64),
            }),
            SimTime::ZERO,
        );
        let g3 = sw.generation();
        assert_ne!(g3, g2);
        sw.set_port_state(PortNo(2), false);
        let g4 = sw.generation();
        assert_ne!(g4, g3);
        sw.crash();
        assert_ne!(sw.generation(), g4);
    }

    #[test]
    fn expiry_bumps_generation_only_when_entries_removed() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(
                FlowEntry::new(10, FlowMatch::ANY, vec![Instruction::output(PortNo(2))])
                    .with_hard_timeout(horse_types::SimDuration::from_secs(5)),
            )),
            SimTime::ZERO,
        );
        let g = sw.generation();
        sw.expire(SimTime::from_secs(4));
        assert_eq!(sw.generation(), g, "nothing expired yet");
        sw.expire(SimTime::from_secs(5));
        assert_ne!(sw.generation(), g, "expiry invalidates cached decisions");
    }

    #[test]
    fn commit_matched_n_equals_n_single_commits() {
        let build = || {
            let mut sw = switch(1);
            sw.apply(
                &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                    10,
                    FlowMatch::ANY,
                    vec![Instruction::output(PortNo(2))],
                ))),
                SimTime::ZERO,
            );
            sw
        };
        let mut a = build();
        let mut b = build();
        let res = a.classify(PortNo(1), &key());
        let now = SimTime::from_millis(7);
        a.commit_matched_n(&res.matched, 5, now);
        for _ in 0..5 {
            b.commit_matched(&res.matched, now);
        }
        assert_eq!(
            format!("{:?}", a.stats(StatsRequest::Table)),
            format!("{:?}", b.stats(StatsRequest::Table))
        );
        assert_eq!(
            format!("{:?}", a.stats(StatsRequest::Flow(TableId(0)))),
            format!("{:?}", b.stats(StatsRequest::Flow(TableId(0))))
        );
        // n == 0 is a strict no-op, even on a miss trail.
        let before = format!("{:?}", a.stats(StatsRequest::Table));
        a.commit_matched_n(&[], 0, now);
        assert_eq!(format!("{:?}", a.stats(StatsRequest::Table)), before);
        // An empty trail credits n lookups on table 0 (burst-sized miss).
        a.commit_matched_n(&[], 3, now);
        b.commit_matched(&[], now);
        b.commit_matched(&[], now);
        b.commit_matched(&[], now);
        assert_eq!(
            format!("{:?}", a.stats(StatsRequest::Table)),
            format!("{:?}", b.stats(StatsRequest::Table))
        );
    }

    #[test]
    fn snapshot_round_trips_generation() {
        let mut sw = switch(1);
        sw.apply(
            &CtrlMsg::FlowMod(FlowMod::add(FlowEntry::new(
                10,
                FlowMatch::ANY,
                vec![Instruction::output(PortNo(2))],
            ))),
            SimTime::ZERO,
        );
        sw.set_port_state(PortNo(3), false);
        let g = sw.generation();
        assert_ne!(g, 0);
        let mut w = horse_types::SnapWriter::new();
        sw.snapshot_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = OpenFlowSwitch::new(NodeId(1), 1, &[]);
        let mut rd = horse_types::SnapReader::new(&bytes);
        restored.restore_state(&mut rd).unwrap();
        assert!(rd.is_exhausted());
        assert_eq!(restored.generation(), g);
    }

    #[test]
    fn port_stats_filter() {
        let mut sw = switch(1);
        sw.port_counters_mut(PortNo(2)).credit_tx(3, 4500);
        if let StatsReply::Port(rows) = sw.stats(StatsRequest::Port(Some(PortNo(2)))) {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].tx_bytes, 4500);
        } else {
            panic!("expected port stats");
        }
        if let StatsReply::Port(rows) = sw.stats(StatsRequest::Port(None)) {
            assert_eq!(rows.len(), 3);
        } else {
            panic!("expected port stats");
        }
    }
}
