//! Group table.
//!
//! Three group types cover the paper's policy needs:
//!
//! * **Select** — load balancing: one bucket is chosen per flow by a
//!   deterministic weighted hash of the flow key, so a flow never splits
//!   across paths (packet reordering is invisible at flow granularity, but
//!   determinism matters for reproducibility).
//! * **All** — replication (flood-style policies).
//! * **Fast-failover** — the first bucket whose watch port is up; used for
//!   resilient source routing.

use crate::actions::Action;
use horse_types::id::GroupId;
use horse_types::{FlowKey, PortNo};
use serde::{Deserialize, Serialize};

/// Group semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GroupType {
    /// Execute every bucket (replication).
    All,
    /// Execute one bucket chosen by weighted flow hash (load balancing).
    Select,
    /// Execute the first live bucket (failover).
    FastFailover,
}

/// One bucket of a group.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Bucket {
    /// Relative selection weight (Select groups; 0 = never chosen).
    pub weight: u32,
    /// Liveness port (FastFailover groups; `PortNo::NONE` = always live).
    pub watch_port: PortNo,
    /// Actions executed when the bucket runs.
    pub actions: Vec<Action>,
}

impl Bucket {
    /// An equal-weight bucket forwarding out of one port.
    pub fn output(port: PortNo) -> Self {
        Bucket {
            weight: 1,
            watch_port: port,
            actions: vec![Action::Output(port)],
        }
    }

    /// A weighted bucket forwarding out of one port.
    pub fn weighted_output(port: PortNo, weight: u32) -> Self {
        Bucket {
            weight,
            watch_port: port,
            actions: vec![Action::Output(port)],
        }
    }
}

/// A group-table entry.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GroupEntry {
    /// Group id (unique per switch).
    pub id: GroupId,
    /// Semantics.
    pub group_type: GroupType,
    /// Buckets, in configuration order.
    pub buckets: Vec<Bucket>,
}

impl GroupEntry {
    /// A select group spreading flows over `ports` with equal weight (ECMP).
    pub fn ecmp(id: GroupId, ports: &[PortNo]) -> Self {
        GroupEntry {
            id,
            group_type: GroupType::Select,
            buckets: ports.iter().map(|&p| Bucket::output(p)).collect(),
        }
    }

    /// Resolves the buckets to execute for `key`, given a per-switch
    /// hash seed and a port-liveness oracle. Returns indices into
    /// `buckets`.
    ///
    /// * `All` → every bucket with a live (or unwatched) port.
    /// * `Select` → one bucket by weighted deterministic hash **among live
    ///   buckets** (OpenFlow allows liveness-aware selection; taking it
    ///   makes select groups degrade gracefully during failures). The
    ///   flow-key hash is mixed with `seed` — switches pass their own id
    ///   — so consecutive ECMP tiers make *independent* choices: with an
    ///   unseeded hash every switch picks the same bucket index and a
    ///   fat-tree's aggregation tier polarizes onto one core per slot
    ///   (the classic CEF-polarization failure).
    /// * `FastFailover` → the first live bucket.
    pub fn resolve<F>(&self, key: &FlowKey, seed: u64, port_up: F) -> Vec<usize>
    where
        F: Fn(PortNo) -> bool,
    {
        let live = |b: &Bucket| b.watch_port == PortNo::NONE || port_up(b.watch_port);
        match self.group_type {
            GroupType::All => self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| live(b))
                .map(|(i, _)| i)
                .collect(),
            GroupType::FastFailover => self
                .buckets
                .iter()
                .enumerate()
                .find(|(_, b)| live(b))
                .map(|(i, _)| vec![i])
                .unwrap_or_default(),
            GroupType::Select => {
                let candidates: Vec<(usize, &Bucket)> = self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| live(b) && b.weight > 0)
                    .collect();
                let total: u64 = candidates.iter().map(|(_, b)| b.weight as u64).sum();
                if total == 0 {
                    return vec![];
                }
                // SplitMix64 finalizer over (key hash ⊕ seed): small
                // consecutive seeds (node ids) must decorrelate fully.
                let mut h = key.stable_hash() ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                h ^= h >> 31;
                let mut point = h % total;
                for (i, b) in candidates {
                    if point < b.weight as u64 {
                        return vec![i];
                    }
                    point -= b.weight as u64;
                }
                unreachable!("weighted point always lands in a bucket")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horse_types::MacAddr;
    use std::net::Ipv4Addr;

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            sport,
            80,
        )
    }

    fn ecmp3() -> GroupEntry {
        GroupEntry::ecmp(GroupId(1), &[PortNo(1), PortNo(2), PortNo(3)])
    }

    #[test]
    fn select_is_deterministic_per_flow() {
        let g = ecmp3();
        let up = |_: PortNo| true;
        for sport in [1000u16, 2000, 3000, 4000] {
            let a = g.resolve(&key(sport), 7, up);
            let b = g.resolve(&key(sport), 7, up);
            assert_eq!(a, b);
            assert_eq!(a.len(), 1);
        }
    }

    #[test]
    fn select_spreads_across_buckets() {
        let g = ecmp3();
        let up = |_: PortNo| true;
        let mut seen = std::collections::HashSet::new();
        for sport in 0..200u16 {
            seen.insert(g.resolve(&key(sport), 7, up)[0]);
        }
        assert_eq!(seen.len(), 3, "200 flows should hit all 3 buckets");
    }

    #[test]
    fn select_seeds_decorrelate_tiers() {
        // The anti-polarization property: the same flow population
        // resolved under two different switch seeds must not land on
        // the same bucket sequence (else a downstream ECMP tier only
        // ever sees one of its uplinks per upstream choice).
        let g = ecmp3();
        let up = |_: PortNo| true;
        let differs = (0..300u16)
            .filter(|&s| g.resolve(&key(s), 1, up) != g.resolve(&key(s), 2, up))
            .count();
        assert!(
            differs > 100,
            "seeds 1 and 2 agree on {}/300 flows — tiers polarized",
            300 - differs
        );
    }

    #[test]
    fn select_skips_dead_buckets() {
        let g = ecmp3();
        let up = |p: PortNo| p != PortNo(2);
        for sport in 0..100u16 {
            let r = g.resolve(&key(sport), 7, up);
            assert_eq!(r.len(), 1);
            assert_ne!(r[0], 1, "bucket 1 (port 2) is dead");
        }
    }

    #[test]
    fn select_respects_weights() {
        let g = GroupEntry {
            id: GroupId(1),
            group_type: GroupType::Select,
            buckets: vec![
                Bucket::weighted_output(PortNo(1), 9),
                Bucket::weighted_output(PortNo(2), 1),
            ],
        };
        let up = |_: PortNo| true;
        let mut counts = [0usize; 2];
        for sport in 0..1000u16 {
            counts[g.resolve(&key(sport), 7, up)[0]] += 1;
        }
        assert!(
            counts[0] > counts[1] * 4,
            "9:1 weights should strongly favour bucket 0, got {counts:?}"
        );
    }

    #[test]
    fn select_zero_weight_never_chosen() {
        let g = GroupEntry {
            id: GroupId(1),
            group_type: GroupType::Select,
            buckets: vec![
                Bucket::weighted_output(PortNo(1), 0),
                Bucket::weighted_output(PortNo(2), 1),
            ],
        };
        let up = |_: PortNo| true;
        for sport in 0..50u16 {
            assert_eq!(g.resolve(&key(sport), 7, up), vec![1]);
        }
    }

    #[test]
    fn all_returns_every_live_bucket() {
        let g = GroupEntry {
            id: GroupId(2),
            group_type: GroupType::All,
            buckets: vec![Bucket::output(PortNo(1)), Bucket::output(PortNo(2))],
        };
        assert_eq!(g.resolve(&key(1), 7, |_| true), vec![0, 1]);
        assert_eq!(g.resolve(&key(1), 7, |p| p == PortNo(2)), vec![1]);
    }

    #[test]
    fn fast_failover_takes_first_live() {
        let g = GroupEntry {
            id: GroupId(3),
            group_type: GroupType::FastFailover,
            buckets: vec![Bucket::output(PortNo(1)), Bucket::output(PortNo(2))],
        };
        assert_eq!(g.resolve(&key(1), 7, |_| true), vec![0]);
        assert_eq!(g.resolve(&key(1), 7, |p| p != PortNo(1)), vec![1]);
        assert!(g.resolve(&key(1), 7, |_| false).is_empty());
    }

    #[test]
    fn unwatched_bucket_is_always_live() {
        let g = GroupEntry {
            id: GroupId(4),
            group_type: GroupType::FastFailover,
            buckets: vec![Bucket {
                weight: 1,
                watch_port: PortNo::NONE,
                actions: vec![Action::Drop],
            }],
        };
        assert_eq!(g.resolve(&key(1), 7, |_| false), vec![0]);
    }
}
