//! Meters (rate limiting).
//!
//! One drop-band per meter, as the paper's rate-limiting policy needs
//! ("rate limiting: e2→e4: 500 Mbps"). The fluid plane reads
//! [`MeterEntry::rate`] as a hard cap on the aggregate rate of flows passing
//! through the meter; the packet plane uses the token bucket
//! ([`MeterEntry::try_consume`]) to decide per-packet drops.

use horse_types::id::MeterId;
use horse_types::{ByteSize, Rate, SimTime};
use serde::{Deserialize, Serialize};

/// A meter with a single drop band.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MeterEntry {
    /// Meter id (unique per switch).
    pub id: MeterId,
    /// Token fill rate — the configured rate limit.
    pub rate: Rate,
    /// Bucket depth; bursts up to this many bytes pass at line rate.
    pub burst: ByteSize,
    /// Current token level in bytes.
    tokens: f64,
    /// Last refill instant.
    last_refill: SimTime,
    /// Bytes admitted.
    pub passed_bytes: u64,
    /// Bytes dropped by the band.
    pub dropped_bytes: u64,
}

impl MeterEntry {
    /// Creates a meter with a full bucket.
    pub fn new(id: MeterId, rate: Rate, burst: ByteSize) -> Self {
        MeterEntry {
            id,
            rate,
            burst,
            tokens: burst.as_bytes() as f64,
            last_refill: SimTime::ZERO,
            passed_bytes: 0,
            dropped_bytes: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = now.saturating_since(self.last_refill).as_secs_f64();
            self.tokens =
                (self.tokens + self.rate.as_bps() * dt / 8.0).min(self.burst.as_bytes() as f64);
            self.last_refill = now;
        }
    }

    /// Packet-plane entry point: admit `bytes` at `now`? Drops (and counts)
    /// the packet when the bucket lacks tokens.
    pub fn try_consume(&mut self, bytes: u64, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            self.passed_bytes = self.passed_bytes.saturating_add(bytes);
            true
        } else {
            self.dropped_bytes = self.dropped_bytes.saturating_add(bytes);
            false
        }
    }

    /// Fluid-plane entry point: the rate cap this meter imposes.
    pub fn rate_cap(&self) -> Rate {
        self.rate
    }

    /// Current token level (bytes), after refilling to `now`.
    pub fn tokens_at(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> MeterEntry {
        // 8 Mbps => 1 MB/s fill, 10 kB bucket
        MeterEntry::new(MeterId(1), Rate::mbps(8.0), ByteSize::bytes(10_000))
    }

    #[test]
    fn burst_passes_then_drops() {
        let mut m = meter();
        let now = SimTime::ZERO;
        assert!(m.try_consume(6_000, now));
        assert!(!m.try_consume(6_000, now), "bucket exhausted");
        assert_eq!(m.passed_bytes, 6_000);
        assert_eq!(m.dropped_bytes, 6_000);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut m = meter();
        assert!(m.try_consume(10_000, SimTime::ZERO));
        assert!(!m.try_consume(1_000, SimTime::ZERO));
        // after 5 ms at 1 MB/s => 5000 bytes refilled
        let later = SimTime::from_millis(5);
        assert!(m.try_consume(4_000, later));
        assert!((m.tokens_at(later) - 1_000.0).abs() < 1.0);
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut m = meter();
        let much_later = SimTime::from_secs(100);
        assert!(m.tokens_at(much_later) <= 10_000.0);
    }

    #[test]
    fn rate_cap_reflects_config() {
        assert_eq!(meter().rate_cap(), Rate::mbps(8.0));
    }
}
