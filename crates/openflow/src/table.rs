//! Priority-ordered flow tables with timeouts.

use crate::actions::Instruction;
use crate::counters::{FlowCounters, TableCounters};
use crate::flow_match::FlowMatch;
use horse_types::{FlowKey, PortNo, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Why a flow entry was removed (reported in FlowRemoved messages).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RemovalReason {
    /// No traffic for `idle_timeout`.
    IdleTimeout,
    /// Lifetime exceeded `hard_timeout`.
    HardTimeout,
    /// Controller deleted it.
    Delete,
}

/// One flow-table entry.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowEntry {
    /// Match priority — higher wins.
    pub priority: u16,
    /// The wildcard match.
    pub matcher: FlowMatch,
    /// Instructions executed on match.
    pub instructions: Vec<Instruction>,
    /// Opaque controller tag (identifies the owning policy module).
    pub cookie: u64,
    /// Remove after this long without traffic (zero = never).
    pub idle_timeout: SimDuration,
    /// Remove this long after installation (zero = never).
    pub hard_timeout: SimDuration,
    /// Counters.
    pub counters: FlowCounters,
    /// Notify the controller when this entry is removed.
    pub notify_removal: bool,
}

impl FlowEntry {
    /// A permanent entry with the given match, priority and instructions.
    pub fn new(priority: u16, matcher: FlowMatch, instructions: Vec<Instruction>) -> Self {
        FlowEntry {
            priority,
            matcher,
            instructions,
            cookie: 0,
            idle_timeout: SimDuration::ZERO,
            hard_timeout: SimDuration::ZERO,
            counters: FlowCounters::default(),
            notify_removal: false,
        }
    }

    /// Builder: set the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// Builder: set the idle timeout.
    pub fn with_idle_timeout(mut self, t: SimDuration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Builder: set the hard timeout.
    pub fn with_hard_timeout(mut self, t: SimDuration) -> Self {
        self.hard_timeout = t;
        self
    }

    /// Builder: request a FlowRemoved notification.
    pub fn with_removal_notification(mut self) -> Self {
        self.notify_removal = true;
        self
    }

    fn expired_at(&self, now: SimTime) -> Option<RemovalReason> {
        if !self.hard_timeout.is_zero()
            && now.saturating_since(self.counters.created) >= self.hard_timeout
        {
            return Some(RemovalReason::HardTimeout);
        }
        if !self.idle_timeout.is_zero()
            && now.saturating_since(self.counters.last_used) >= self.idle_timeout
        {
            return Some(RemovalReason::IdleTimeout);
        }
        None
    }
}

/// A single flow table: entries sorted by descending priority; insertion
/// order breaks ties (first-installed wins), which keeps lookups
/// deterministic.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    /// Lookup/match counters.
    pub counters: TableCounters,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in match order.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Installs an entry (stamping its creation time). An existing entry
    /// with identical match and priority is **replaced**, per OpenFlow
    /// `ADD` semantics; its counters are reset.
    pub fn insert(&mut self, mut entry: FlowEntry, now: SimTime) {
        entry.counters = FlowCounters::new(now);
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.priority == entry.priority && e.matcher == entry.matcher)
        {
            self.entries[pos] = entry;
            return;
        }
        // keep sorted by descending priority, stable for equal priorities
        let pos = self
            .entries
            .partition_point(|e| e.priority >= entry.priority);
        self.entries.insert(pos, entry);
    }

    /// Highest-priority entry matching `(in_port, key)`; updates table
    /// counters and the entry's packet counter / last-used stamp.
    pub fn lookup(&mut self, in_port: PortNo, key: &FlowKey, now: SimTime) -> Option<&FlowEntry> {
        self.counters.lookups += 1;
        let idx = self
            .entries
            .iter()
            .position(|e| e.matcher.matches(in_port, key))?;
        self.counters.matches += 1;
        let e = &mut self.entries[idx];
        e.counters.credit(1, horse_types::ByteSize::ZERO, now);
        Some(&self.entries[idx])
    }

    /// Read-only lookup: no counter updates (used by validators and tests).
    pub fn peek(&self, in_port: PortNo, key: &FlowKey) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .find(|e| e.matcher.matches(in_port, key))
    }

    /// Credits bytes/packets to the entry identified by `(priority, match)`.
    /// Returns `false` if no such entry exists (e.g. it expired meanwhile).
    pub fn credit(
        &mut self,
        priority: u16,
        matcher: &FlowMatch,
        packets: u64,
        bytes: horse_types::ByteSize,
        now: SimTime,
    ) -> bool {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == priority && e.matcher == *matcher)
        {
            e.counters.credit(packets, bytes, now);
            true
        } else {
            false
        }
    }

    /// Deletes entries. With `strict`, only an exact `(priority, match)`
    /// pair is removed; otherwise every entry whose match is a subset of
    /// `matcher` goes (OpenFlow non-strict delete). Removed entries are
    /// returned together with the reason `Delete`.
    pub fn delete(
        &mut self,
        matcher: &FlowMatch,
        priority: Option<u16>,
        strict: bool,
    ) -> Vec<FlowEntry> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let matches = if strict {
                Some(e.priority) == priority && e.matcher == *matcher
            } else {
                e.matcher.is_subset_of(matcher)
            };
            if matches {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Removes expired entries, returning them with their reasons.
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, RemovalReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| match e.expired_at(now) {
            Some(reason) => {
                out.push((e.clone(), reason));
                false
            }
            None => true,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Instruction;
    use horse_types::{ByteSize, MacAddr};
    use std::net::Ipv4Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            40000,
            80,
        )
    }

    fn entry(priority: u16, m: FlowMatch, port: u16) -> FlowEntry {
        FlowEntry::new(priority, m, vec![Instruction::output(PortNo(port))])
    }

    #[test]
    fn highest_priority_wins() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY, 1), SimTime::ZERO);
        t.insert(entry(100, FlowMatch::ANY.with_tp_dst(80), 2), SimTime::ZERO);
        let e = t.lookup(PortNo(1), &key(), SimTime::ZERO).unwrap();
        assert_eq!(e.priority, 100);
    }

    #[test]
    fn insertion_order_breaks_priority_ties() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY.with_tp_dst(80), 1), SimTime::ZERO);
        t.insert(
            entry(
                10,
                FlowMatch::ANY.with_ip_proto(horse_types::IpProtocol::Tcp),
                2,
            ),
            SimTime::ZERO,
        );
        let e = t.peek(PortNo(1), &key()).unwrap();
        assert_eq!(e.instructions, vec![Instruction::output(PortNo(1))]);
    }

    #[test]
    fn add_replaces_same_match_and_priority() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY, 1), SimTime::ZERO);
        t.insert(entry(10, FlowMatch::ANY, 2), SimTime::from_secs(1));
        assert_eq!(t.len(), 1);
        let e = t.peek(PortNo(1), &key()).unwrap();
        assert_eq!(e.instructions, vec![Instruction::output(PortNo(2))]);
    }

    #[test]
    fn lookup_updates_counters() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY, 1), SimTime::ZERO);
        t.lookup(PortNo(1), &key(), SimTime::from_secs(3));
        let e = t.entries().next().unwrap();
        assert_eq!(e.counters.packets, 1);
        assert_eq!(e.counters.last_used, SimTime::from_secs(3));
        assert_eq!(t.counters.lookups, 1);
        assert_eq!(t.counters.matches, 1);
    }

    #[test]
    fn miss_counts_lookup_only() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY.with_tp_dst(443), 1), SimTime::ZERO);
        assert!(t.lookup(PortNo(1), &key(), SimTime::ZERO).is_none());
        assert_eq!(t.counters.lookups, 1);
        assert_eq!(t.counters.matches, 0);
    }

    #[test]
    fn credit_by_identity() {
        let mut t = FlowTable::new();
        let m = FlowMatch::ANY.with_tp_dst(80);
        t.insert(entry(10, m, 1), SimTime::ZERO);
        assert!(t.credit(10, &m, 5, ByteSize::bytes(7500), SimTime::from_secs(1)));
        assert!(!t.credit(11, &m, 1, ByteSize::bytes(1), SimTime::from_secs(1)));
        let e = t.entries().next().unwrap();
        assert_eq!(e.counters.bytes, 7500);
        assert_eq!(e.counters.packets, 5);
    }

    #[test]
    fn strict_delete_removes_exact_only() {
        let mut t = FlowTable::new();
        let m = FlowMatch::ANY.with_tp_dst(80);
        t.insert(entry(10, m, 1), SimTime::ZERO);
        t.insert(entry(20, m, 2), SimTime::ZERO);
        let removed = t.delete(&m, Some(10), true);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].priority, 10);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn nonstrict_delete_removes_subsets() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY.with_tp_dst(80), 1), SimTime::ZERO);
        t.insert(
            entry(
                20,
                FlowMatch::ANY
                    .with_tp_dst(80)
                    .with_ip_proto(horse_types::IpProtocol::Tcp),
                2,
            ),
            SimTime::ZERO,
        );
        t.insert(entry(30, FlowMatch::ANY.with_tp_dst(443), 3), SimTime::ZERO);
        let removed = t.delete(&FlowMatch::ANY.with_tp_dst(80), None, false);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new();
        t.insert(
            entry(10, FlowMatch::ANY, 1).with_hard_timeout(SimDuration::from_secs(10)),
            SimTime::ZERO,
        );
        assert!(t.expire(SimTime::from_secs(9)).is_empty());
        let ex = t.expire(SimTime::from_secs(10));
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].1, RemovalReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_resets_on_traffic() {
        let mut t = FlowTable::new();
        t.insert(
            entry(10, FlowMatch::ANY, 1).with_idle_timeout(SimDuration::from_secs(5)),
            SimTime::ZERO,
        );
        // traffic at t=4 pushes last_used forward
        t.lookup(PortNo(1), &key(), SimTime::from_secs(4));
        assert!(t.expire(SimTime::from_secs(8)).is_empty());
        let ex = t.expire(SimTime::from_secs(9));
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].1, RemovalReason::IdleTimeout);
    }

    #[test]
    fn hard_timeout_beats_idle_when_both_due() {
        let mut t = FlowTable::new();
        t.insert(
            entry(10, FlowMatch::ANY, 1)
                .with_idle_timeout(SimDuration::from_secs(5))
                .with_hard_timeout(SimDuration::from_secs(5)),
            SimTime::ZERO,
        );
        let ex = t.expire(SimTime::from_secs(5));
        assert_eq!(ex[0].1, RemovalReason::HardTimeout);
    }

    #[test]
    fn zero_timeouts_never_expire() {
        let mut t = FlowTable::new();
        t.insert(entry(10, FlowMatch::ANY, 1), SimTime::ZERO);
        assert!(t.expire(SimTime::from_secs(1_000_000)).is_empty());
    }
}
