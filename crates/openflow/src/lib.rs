//! # horse-openflow
//!
//! The abstracted OpenFlow switch model. Per the paper, Horse keeps the
//! *semantics* of OpenFlow — flow tables, priorities, wildcards, groups,
//! meters, counters, and the controller message vocabulary — while dropping
//! the wire protocol: "there are no real OpenFlow connections between the
//! control and the data plane"; messages are plain Rust values handed
//! across with a configurable latency.
//!
//! Modules:
//!
//! * [`flow_match`] — wildcard match over [`horse_types::FlowKey`] +
//!   ingress port, with overlap/subset tests used by policy validation.
//! * [`actions`] — actions and instructions (output, group, set-field,
//!   meter, goto-table).
//! * [`table`] — a priority-ordered flow table with idle/hard timeouts.
//! * [`group`] — group table: `all`, `select` (deterministic-hash ECMP,
//!   weighted), `fast-failover` (liveness-watched buckets).
//! * [`meter`] — token-bucket meters (drop band), enforced as rate caps by
//!   the fluid plane and as token buckets by the packet plane.
//! * [`counters`] — flow/port/table counters ("OpenFlow counters" are one
//!   of the paper's monitoring primitives).
//! * [`switch`] — the multi-table pipeline: classification, group
//!   resolution, counter attribution, timeout expiry, message application.
//! * [`messages`] — the in-memory control channel vocabulary (FlowMod,
//!   GroupMod, MeterMod, FlowIn, FlowRemoved, PortStatus, stats).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod counters;
pub mod flow_match;
pub mod group;
pub mod messages;
pub mod meter;
pub mod switch;
pub mod table;

pub use actions::{Action, Instruction};
pub use counters::{FlowCounters, PortCounters, TableCounters};
pub use flow_match::FlowMatch;
pub use group::{Bucket, GroupEntry, GroupType};
pub use messages::{
    CtrlMsg, FlowMod, FlowModCommand, GroupMod, MeterMod, StatsReply, StatsRequest, SwitchMsg,
};
pub use meter::MeterEntry;
pub use switch::{DropReason, OpenFlowSwitch, PipelineResult, Verdict};
pub use table::{FlowEntry, FlowTable};

/// Re-export of the group id newtype (defined with the other ids).
pub use horse_types::id::GroupId;
/// Re-export of the meter id newtype (defined with the other ids).
pub use horse_types::id::MeterId;
