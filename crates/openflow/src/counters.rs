//! OpenFlow counters.
//!
//! The paper lists "OpenFlow counters" among the monitoring primitives the
//! control plane reads. In the fluid model a "packet" is an accounting
//! quantum: byte counters are exact (integrated from flow rates), packet
//! counters are derived as `bytes / avg_packet_size` when credited by the
//! fluid plane, and exact when credited by the packet plane.

use horse_types::{ByteSize, SimTime};
use serde::{Deserialize, Serialize};

/// Per-flow-entry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCounters {
    /// Packets attributed to this entry.
    pub packets: u64,
    /// Bytes attributed to this entry.
    pub bytes: u64,
    /// When the entry was installed.
    pub created: SimTime,
    /// Last time the entry matched traffic (drives idle timeout).
    pub last_used: SimTime,
}

impl FlowCounters {
    /// A fresh counter set created at `now`.
    pub fn new(now: SimTime) -> Self {
        FlowCounters {
            packets: 0,
            bytes: 0,
            created: now,
            last_used: now,
        }
    }

    /// Credits traffic to the entry.
    pub fn credit(&mut self, packets: u64, bytes: ByteSize, now: SimTime) {
        self.packets = self.packets.saturating_add(packets);
        self.bytes = self.bytes.saturating_add(bytes.as_bytes());
        if now > self.last_used {
            self.last_used = now;
        }
    }

    /// Seconds the entry has existed at `now`.
    pub fn age(&self, now: SimTime) -> f64 {
        now.saturating_since(self.created).as_secs_f64()
    }
}

/// Per-port counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounters {
    /// Packets received.
    pub rx_packets: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Packets dropped on this port (queue overflow or policy).
    pub drops: u64,
}

impl PortCounters {
    /// Credits received traffic.
    pub fn credit_rx(&mut self, packets: u64, bytes: u64) {
        self.rx_packets = self.rx_packets.saturating_add(packets);
        self.rx_bytes = self.rx_bytes.saturating_add(bytes);
    }

    /// Credits transmitted traffic.
    pub fn credit_tx(&mut self, packets: u64, bytes: u64) {
        self.tx_packets = self.tx_packets.saturating_add(packets);
        self.tx_bytes = self.tx_bytes.saturating_add(bytes);
    }
}

/// Per-table counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableCounters {
    /// Lookups performed in this table.
    pub lookups: u64,
    /// Lookups that matched an entry.
    pub matches: u64,
}

impl TableCounters {
    /// Fraction of lookups that hit, `0.0` when no lookups yet.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.matches as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_counters_credit_and_age() {
        let mut c = FlowCounters::new(SimTime::from_secs(1));
        c.credit(2, ByteSize::bytes(3000), SimTime::from_secs(5));
        assert_eq!(c.packets, 2);
        assert_eq!(c.bytes, 3000);
        assert_eq!(c.last_used, SimTime::from_secs(5));
        assert_eq!(c.age(SimTime::from_secs(11)), 10.0);
        // stale credit does not move last_used backwards
        c.credit(1, ByteSize::bytes(1), SimTime::from_secs(2));
        assert_eq!(c.last_used, SimTime::from_secs(5));
    }

    #[test]
    fn port_counters_accumulate() {
        let mut p = PortCounters::default();
        p.credit_rx(1, 1500);
        p.credit_tx(2, 3000);
        assert_eq!(p.rx_packets, 1);
        assert_eq!(p.tx_bytes, 3000);
    }

    #[test]
    fn table_hit_rate() {
        let mut t = TableCounters::default();
        assert_eq!(t.hit_rate(), 0.0);
        t.lookups = 10;
        t.matches = 4;
        assert!((t.hit_rate() - 0.4).abs() < 1e-12);
    }
}
