//! Actions and instructions.
//!
//! The subset of OpenFlow 1.3 semantics the paper's policies compile to:
//! output (physical port, controller, flood), group indirection (load
//! balancing / failover), header rewrites (MAC, VLAN), drop, plus the
//! `Meter` and `GotoTable` instructions.

use horse_types::id::{GroupId, MeterId};
use horse_types::{MacAddr, PortNo, TableId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A data-plane action applied to a matching flow.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Forward out of a port (physical, `CONTROLLER` or `FLOOD`).
    Output(PortNo),
    /// Hand off to a group entry.
    Group(GroupId),
    /// Rewrite the destination MAC.
    SetEthDst(MacAddr),
    /// Rewrite the source MAC.
    SetEthSrc(MacAddr),
    /// Push/replace the VLAN tag.
    SetVlan(u16),
    /// Remove the VLAN tag.
    StripVlan,
    /// Explicitly drop.
    Drop,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output:{p}"),
            Action::Group(g) => write!(f, "group:{g}"),
            Action::SetEthDst(m) => write!(f, "set_eth_dst:{m}"),
            Action::SetEthSrc(m) => write!(f, "set_eth_src:{m}"),
            Action::SetVlan(v) => write!(f, "set_vlan:{v}"),
            Action::StripVlan => write!(f, "strip_vlan"),
            Action::Drop => write!(f, "drop"),
        }
    }
}

/// A flow-entry instruction.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Instruction {
    /// Apply these actions immediately.
    ApplyActions(Vec<Action>),
    /// Rate-limit through a meter before the actions run.
    Meter(MeterId),
    /// Continue matching in a later table.
    GotoTable(TableId),
}

impl Instruction {
    /// Single-output shorthand.
    pub fn output(port: PortNo) -> Self {
        Instruction::ApplyActions(vec![Action::Output(port)])
    }

    /// Drop shorthand.
    pub fn drop() -> Self {
        Instruction::ApplyActions(vec![Action::Drop])
    }

    /// Send-to-controller shorthand.
    pub fn to_controller() -> Self {
        Instruction::ApplyActions(vec![Action::Output(PortNo::CONTROLLER)])
    }

    /// Group shorthand.
    pub fn group(g: GroupId) -> Self {
        Instruction::ApplyActions(vec![Action::Group(g)])
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::ApplyActions(a) => {
                let s: Vec<String> = a.iter().map(|x| x.to_string()).collect();
                write!(f, "apply[{}]", s.join(","))
            }
            Instruction::Meter(m) => write!(f, "meter:{m}"),
            Instruction::GotoTable(t) => write!(f, "goto:{t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthands() {
        assert_eq!(
            Instruction::output(PortNo(3)),
            Instruction::ApplyActions(vec![Action::Output(PortNo(3))])
        );
        assert_eq!(
            Instruction::drop(),
            Instruction::ApplyActions(vec![Action::Drop])
        );
        assert_eq!(
            Instruction::to_controller(),
            Instruction::ApplyActions(vec![Action::Output(PortNo::CONTROLLER)])
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instruction::output(PortNo(2)).to_string(),
            "apply[output:port#2]"
        );
        assert_eq!(Instruction::Meter(MeterId(1)).to_string(), "meter:meter#1");
        assert_eq!(
            Instruction::GotoTable(TableId(1)).to_string(),
            "goto:table#1"
        );
        assert_eq!(Action::StripVlan.to_string(), "strip_vlan");
    }
}
