//! The in-memory control channel.
//!
//! The paper's design explicitly avoids real OpenFlow connections "to
//! reduce the state that needs to be kept" — control messages are plain
//! values. The core simulator delivers them between switch and controller
//! with a configurable latency, preserving the *decoupled control/data
//! plane* timing the abstraction must capture.

use crate::flow_match::FlowMatch;
use crate::group::GroupEntry;
use crate::meter::MeterEntry;
use crate::table::{FlowEntry, RemovalReason};
use horse_types::id::{GroupId, MeterId};
use horse_types::{ByteSize, FlowKey, NodeId, PortNo, Rate, TableId};
use serde::{Deserialize, Serialize};

/// FlowMod verb.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FlowModCommand {
    /// Install (replacing an identical match+priority entry).
    Add,
    /// Delete matching entries (non-strict: subset matching).
    Delete {
        /// Exact match+priority only.
        strict: bool,
    },
}

/// A flow-table modification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowMod {
    /// Target table.
    pub table: TableId,
    /// Add or delete.
    pub command: FlowModCommand,
    /// The entry (for `Add`) or the match template (for `Delete`).
    pub entry: FlowEntry,
}

impl FlowMod {
    /// Shorthand for an Add into table 0.
    pub fn add(entry: FlowEntry) -> Self {
        FlowMod {
            table: TableId(0),
            command: FlowModCommand::Add,
            entry,
        }
    }

    /// Shorthand for a non-strict delete in table 0.
    pub fn delete(matcher: FlowMatch) -> Self {
        FlowMod {
            table: TableId(0),
            command: FlowModCommand::Delete { strict: false },
            entry: FlowEntry::new(0, matcher, vec![]),
        }
    }
}

/// Group-table modification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum GroupMod {
    /// Install or replace a group.
    Add(GroupEntry),
    /// Remove a group.
    Delete(GroupId),
}

/// Meter-table modification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum MeterMod {
    /// Install or replace a meter.
    Add {
        /// Meter id.
        id: MeterId,
        /// Token rate (the limit).
        rate: Rate,
        /// Bucket depth.
        burst: ByteSize,
    },
    /// Remove a meter.
    Delete(MeterId),
}

impl MeterMod {
    /// Builds the meter entry for an `Add`; `None` for `Delete`.
    pub fn to_entry(&self) -> Option<MeterEntry> {
        match self {
            MeterMod::Add { id, rate, burst } => Some(MeterEntry::new(*id, *rate, *burst)),
            MeterMod::Delete(_) => None,
        }
    }
}

/// Statistics request kinds (the "Monitor" block of Fig. 2 polls these).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StatsRequest {
    /// Per-entry stats of one table.
    Flow(TableId),
    /// Per-port counters (`None` = all ports).
    Port(Option<PortNo>),
    /// Table lookup/match counters.
    Table,
}

/// One row of a flow-stats reply.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowStatsEntry {
    /// Table the entry lives in.
    pub table: TableId,
    /// Entry priority.
    pub priority: u16,
    /// Entry match.
    pub matcher: FlowMatch,
    /// Controller cookie.
    pub cookie: u64,
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted.
    pub bytes: u64,
}

/// One row of a port-stats reply.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PortStatsEntry {
    /// The port.
    pub port: PortNo,
    /// Received packets.
    pub rx_packets: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Drops on this port.
    pub drops: u64,
}

/// One row of a table-stats reply.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TableStatsEntry {
    /// The table.
    pub table: TableId,
    /// Active entry count.
    pub active_entries: u64,
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that matched.
    pub matches: u64,
}

/// Statistics replies.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum StatsReply {
    /// Flow stats rows.
    Flow(Vec<FlowStatsEntry>),
    /// Port stats rows.
    Port(Vec<PortStatsEntry>),
    /// Table stats rows.
    Table(Vec<TableStatsEntry>),
}

/// Controller → switch messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CtrlMsg {
    /// Modify a flow table.
    FlowMod(FlowMod),
    /// Modify the group table.
    GroupMod(GroupMod),
    /// Modify the meter table.
    MeterMod(MeterMod),
    /// Request statistics.
    StatsRequest(StatsRequest),
    /// Fence: the switch replies `BarrierReply` once preceding messages are
    /// applied (application is immediate in-memory, so this orders events).
    Barrier,
}

/// Switch → controller messages.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum SwitchMsg {
    /// A flow hit a table miss (or an explicit send-to-controller rule) —
    /// the flow-level analogue of OpenFlow `PACKET_IN`.
    FlowIn {
        /// Reporting switch.
        switch: NodeId,
        /// Ingress port of the flow.
        in_port: PortNo,
        /// The flow's header fields.
        key: FlowKey,
    },
    /// An entry with `notify_removal` was removed.
    FlowRemoved {
        /// Reporting switch.
        switch: NodeId,
        /// Table it lived in.
        table: TableId,
        /// Entry priority.
        priority: u16,
        /// Entry match.
        matcher: FlowMatch,
        /// Controller cookie.
        cookie: u64,
        /// Why it was removed.
        reason: RemovalReason,
        /// Final packet count.
        packets: u64,
        /// Final byte count.
        bytes: u64,
    },
    /// A port changed state.
    PortStatus {
        /// Reporting switch.
        switch: NodeId,
        /// The port.
        port: PortNo,
        /// New state.
        up: bool,
    },
    /// Statistics reply.
    StatsReply {
        /// Reporting switch.
        switch: NodeId,
        /// The payload.
        reply: StatsReply,
    },
    /// Barrier acknowledgement.
    BarrierReply {
        /// Reporting switch.
        switch: NodeId,
    },
}

// Checkpointing: in-flight control-channel messages live inside queued
// simulation events and the outage replay buffer; both planes' snapshots
// carry them through the serde bridge (canonical Value encoding).
horse_types::impl_snap_via_serde!(CtrlMsg, SwitchMsg);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Instruction;

    #[test]
    fn flowmod_shorthands() {
        let fm = FlowMod::add(FlowEntry::new(
            5,
            FlowMatch::ANY,
            vec![Instruction::output(PortNo(1))],
        ));
        assert_eq!(fm.table, TableId(0));
        assert_eq!(fm.command, FlowModCommand::Add);
        let del = FlowMod::delete(FlowMatch::ANY.with_tp_dst(80));
        assert_eq!(del.command, FlowModCommand::Delete { strict: false });
    }

    #[test]
    fn metermod_to_entry() {
        let mm = MeterMod::Add {
            id: MeterId(3),
            rate: Rate::mbps(500.0),
            burst: ByteSize::kib(64),
        };
        let e = mm.to_entry().unwrap();
        assert_eq!(e.id, MeterId(3));
        assert_eq!(e.rate, Rate::mbps(500.0));
        assert!(MeterMod::Delete(MeterId(3)).to_entry().is_none());
    }

    #[test]
    fn messages_serde_roundtrip() {
        let msg = CtrlMsg::StatsRequest(StatsRequest::Port(None));
        let js = serde_json::to_string(&msg).unwrap();
        let back: CtrlMsg = serde_json::from_str(&js).unwrap();
        assert!(matches!(
            back,
            CtrlMsg::StatsRequest(StatsRequest::Port(None))
        ));
    }
}
