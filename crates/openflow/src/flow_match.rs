//! Wildcard flow matching.
//!
//! [`FlowMatch`] is the OpenFlow match structure reduced to the fields the
//! paper's policy set needs: ingress port, L2 addresses, EtherType, VLAN,
//! L3 prefixes, IP protocol and L4 ports. Each field is optional —
//! `None` means wildcard. IP addresses match by prefix so blackholing and
//! peering policies can target whole networks.

use horse_types::{FlowKey, IpProtocol, Ipv4Net, MacAddr, PortNo};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A wildcard match over flow-key fields plus the ingress port.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Source MAC.
    pub eth_src: Option<MacAddr>,
    /// Destination MAC.
    pub eth_dst: Option<MacAddr>,
    /// EtherType.
    pub eth_type: Option<u16>,
    /// VLAN id (matching untagged traffic requires a wildcard here).
    pub vlan: Option<u16>,
    /// Source IPv4 prefix.
    pub ip_src: Option<Ipv4Net>,
    /// Destination IPv4 prefix.
    pub ip_dst: Option<Ipv4Net>,
    /// IP protocol.
    pub ip_proto: Option<IpProtocol>,
    /// Transport source port.
    pub tp_src: Option<u16>,
    /// Transport destination port.
    pub tp_dst: Option<u16>,
}

impl FlowMatch {
    /// The match-everything wildcard (table-miss match).
    pub const ANY: FlowMatch = FlowMatch {
        in_port: None,
        eth_src: None,
        eth_dst: None,
        eth_type: None,
        vlan: None,
        ip_src: None,
        ip_dst: None,
        ip_proto: None,
        tp_src: None,
        tp_dst: None,
    };

    /// Builder: match on ingress port.
    pub fn with_in_port(mut self, p: PortNo) -> Self {
        self.in_port = Some(p);
        self
    }

    /// Builder: match on source MAC.
    pub fn with_eth_src(mut self, m: MacAddr) -> Self {
        self.eth_src = Some(m);
        self
    }

    /// Builder: match on destination MAC.
    pub fn with_eth_dst(mut self, m: MacAddr) -> Self {
        self.eth_dst = Some(m);
        self
    }

    /// Builder: match on EtherType.
    pub fn with_eth_type(mut self, t: u16) -> Self {
        self.eth_type = Some(t);
        self
    }

    /// Builder: match on VLAN id.
    pub fn with_vlan(mut self, v: u16) -> Self {
        self.vlan = Some(v);
        self
    }

    /// Builder: match on source prefix.
    pub fn with_ip_src(mut self, n: Ipv4Net) -> Self {
        self.ip_src = Some(n);
        self
    }

    /// Builder: match on destination prefix.
    pub fn with_ip_dst(mut self, n: Ipv4Net) -> Self {
        self.ip_dst = Some(n);
        self
    }

    /// Builder: match on IP protocol.
    pub fn with_ip_proto(mut self, p: IpProtocol) -> Self {
        self.ip_proto = Some(p);
        self
    }

    /// Builder: match on transport source port.
    pub fn with_tp_src(mut self, p: u16) -> Self {
        self.tp_src = Some(p);
        self
    }

    /// Builder: match on transport destination port.
    pub fn with_tp_dst(mut self, p: u16) -> Self {
        self.tp_dst = Some(p);
        self
    }

    /// Exact-match on every L2–L4 field of `key` (not the ingress port).
    pub fn exact(key: &FlowKey) -> Self {
        FlowMatch {
            in_port: None,
            eth_src: Some(key.eth_src),
            eth_dst: Some(key.eth_dst),
            eth_type: Some(key.eth_type),
            vlan: key.vlan,
            ip_src: Some(Ipv4Net::host(key.ip_src)),
            ip_dst: Some(Ipv4Net::host(key.ip_dst)),
            ip_proto: Some(key.ip_proto),
            tp_src: Some(key.tp_src),
            tp_dst: Some(key.tp_dst),
        }
    }

    /// Does a flow arriving on `in_port` with header `key` match?
    pub fn matches(&self, in_port: PortNo, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if m != key.eth_src {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if m != key.eth_dst {
                return false;
            }
        }
        if let Some(t) = self.eth_type {
            if t != key.eth_type {
                return false;
            }
        }
        if let Some(v) = self.vlan {
            if key.vlan != Some(v) {
                return false;
            }
        }
        if let Some(n) = self.ip_src {
            if !n.contains(key.ip_src) {
                return false;
            }
        }
        if let Some(n) = self.ip_dst {
            if !n.contains(key.ip_dst) {
                return false;
            }
        }
        if let Some(p) = self.ip_proto {
            if p != key.ip_proto {
                return false;
            }
        }
        if let Some(p) = self.tp_src {
            if p != key.tp_src {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if p != key.tp_dst {
                return false;
            }
        }
        true
    }

    /// True if some packet could match both `self` and `other`
    /// (field-by-field compatibility). This is the core primitive of the
    /// policy-composition validator.
    pub fn overlaps(&self, other: &FlowMatch) -> bool {
        fn f<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            }
        }
        fn pfx(a: Option<Ipv4Net>, b: Option<Ipv4Net>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x.overlaps(&y),
                _ => true,
            }
        }
        f(self.in_port, other.in_port)
            && f(self.eth_src, other.eth_src)
            && f(self.eth_dst, other.eth_dst)
            && f(self.eth_type, other.eth_type)
            && f(self.vlan, other.vlan)
            && pfx(self.ip_src, other.ip_src)
            && pfx(self.ip_dst, other.ip_dst)
            && f(self.ip_proto, other.ip_proto)
            && f(self.tp_src, other.tp_src)
            && f(self.tp_dst, other.tp_dst)
    }

    /// True if every packet matching `self` also matches `other`
    /// (i.e. `self` is at least as specific).
    pub fn is_subset_of(&self, other: &FlowMatch) -> bool {
        fn f<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
            match (a, b) {
                (_, None) => true,
                (Some(x), Some(y)) => x == y,
                (None, Some(_)) => false,
            }
        }
        fn pfx(a: Option<Ipv4Net>, b: Option<Ipv4Net>) -> bool {
            match (a, b) {
                (_, None) => true,
                (Some(x), Some(y)) => x.len >= y.len && y.contains(x.addr),
                (None, Some(_)) => false,
            }
        }
        f(self.in_port, other.in_port)
            && f(self.eth_src, other.eth_src)
            && f(self.eth_dst, other.eth_dst)
            && f(self.eth_type, other.eth_type)
            && f(self.vlan, other.vlan)
            && pfx(self.ip_src, other.ip_src)
            && pfx(self.ip_dst, other.ip_dst)
            && f(self.ip_proto, other.ip_proto)
            && f(self.tp_src, other.tp_src)
            && f(self.tp_dst, other.tp_dst)
    }

    /// Number of specified (non-wildcard) fields — a crude specificity
    /// measure used by validators and debug output.
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += self.in_port.is_some() as u32;
        n += self.eth_src.is_some() as u32;
        n += self.eth_dst.is_some() as u32;
        n += self.eth_type.is_some() as u32;
        n += self.vlan.is_some() as u32;
        n += self.ip_src.is_some() as u32;
        n += self.ip_dst.is_some() as u32;
        n += self.ip_proto.is_some() as u32;
        n += self.tp_src.is_some() as u32;
        n += self.tp_dst.is_some() as u32;
        n
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == FlowMatch::ANY {
            return write!(f, "*");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.in_port {
            parts.push(format!("in={p}"));
        }
        if let Some(m) = self.eth_src {
            parts.push(format!("eth_src={m}"));
        }
        if let Some(m) = self.eth_dst {
            parts.push(format!("eth_dst={m}"));
        }
        if let Some(t) = self.eth_type {
            parts.push(format!("eth_type=0x{t:04x}"));
        }
        if let Some(v) = self.vlan {
            parts.push(format!("vlan={v}"));
        }
        if let Some(n) = self.ip_src {
            parts.push(format!("ip_src={n}"));
        }
        if let Some(n) = self.ip_dst {
            parts.push(format!("ip_dst={n}"));
        }
        if let Some(p) = self.ip_proto {
            parts.push(format!("proto={p}"));
        }
        if let Some(p) = self.tp_src {
            parts.push(format!("tp_src={p}"));
        }
        if let Some(p) = self.tp_dst {
            parts.push(format!("tp_dst={p}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

// Checkpointing: matches ride inside resolved routes, so they must
// round-trip through the binary snapshot codec.
horse_types::impl_snap_via_serde!(FlowMatch);

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key() -> FlowKey {
        FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 1, 0, 1),
            40000,
            80,
        )
    }

    #[test]
    fn any_matches_everything() {
        assert!(FlowMatch::ANY.matches(PortNo(1), &key()));
        assert_eq!(FlowMatch::ANY.specificity(), 0);
    }

    #[test]
    fn exact_matches_only_its_key() {
        let m = FlowMatch::exact(&key());
        assert!(m.matches(PortNo(1), &key()));
        assert!(m.matches(PortNo(7), &key()), "exact() wildcards the port");
        let mut other = key();
        other.tp_dst = 443;
        assert!(!m.matches(PortNo(1), &other));
    }

    #[test]
    fn field_mismatches_reject() {
        let k = key();
        assert!(!FlowMatch::ANY
            .with_in_port(PortNo(2))
            .matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY
            .with_eth_src(MacAddr::local_from_id(9))
            .matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY
            .with_eth_dst(MacAddr::local_from_id(9))
            .matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY.with_eth_type(0x0806).matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY.with_vlan(5).matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY
            .with_ip_src("192.168.0.0/16".parse().unwrap())
            .matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY
            .with_ip_proto(IpProtocol::Udp)
            .matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY.with_tp_src(1).matches(PortNo(1), &k));
        assert!(!FlowMatch::ANY.with_tp_dst(443).matches(PortNo(1), &k));
    }

    #[test]
    fn prefix_matching() {
        let m = FlowMatch::ANY.with_ip_dst("10.1.0.0/16".parse().unwrap());
        assert!(m.matches(PortNo(1), &key()));
        let m2 = FlowMatch::ANY.with_ip_dst("10.2.0.0/16".parse().unwrap());
        assert!(!m2.matches(PortNo(1), &key()));
    }

    #[test]
    fn vlan_matching_requires_tag() {
        let m = FlowMatch::ANY.with_vlan(100);
        let mut k = key();
        assert!(!m.matches(PortNo(1), &k), "untagged never matches vlan");
        k.vlan = Some(100);
        assert!(m.matches(PortNo(1), &k));
        k.vlan = Some(200);
        assert!(!m.matches(PortNo(1), &k));
    }

    #[test]
    fn overlap_symmetric_cases() {
        let a = FlowMatch::ANY.with_tp_dst(80);
        let b = FlowMatch::ANY.with_ip_proto(IpProtocol::Tcp);
        assert!(a.overlaps(&b) && b.overlaps(&a), "different fields overlap");
        let c = FlowMatch::ANY.with_tp_dst(443);
        assert!(!a.overlaps(&c), "same field different values disjoint");
        assert!(FlowMatch::ANY.overlaps(&a));
    }

    #[test]
    fn overlap_prefixes() {
        let a = FlowMatch::ANY.with_ip_dst("10.0.0.0/8".parse().unwrap());
        let b = FlowMatch::ANY.with_ip_dst("10.5.0.0/16".parse().unwrap());
        let c = FlowMatch::ANY.with_ip_dst("11.0.0.0/8".parse().unwrap());
        assert!(a.overlaps(&b));
        assert!(!b.overlaps(&c));
    }

    #[test]
    fn subset_relation() {
        let wide = FlowMatch::ANY.with_ip_dst("10.0.0.0/8".parse().unwrap());
        let narrow = wide
            .with_tp_dst(80)
            .with_ip_dst("10.5.0.0/16".parse().unwrap());
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
        assert!(wide.is_subset_of(&FlowMatch::ANY));
        assert!(narrow.is_subset_of(&narrow));
    }

    #[test]
    fn specificity_counts_fields() {
        // 8 fields set: in_port and vlan stay wildcard for an untagged key
        assert_eq!(FlowMatch::exact(&key()).specificity(), 8);
        assert_eq!(FlowMatch::ANY.with_tp_dst(80).specificity(), 1);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(FlowMatch::ANY.to_string(), "*");
        let m = FlowMatch::ANY
            .with_tp_dst(80)
            .with_ip_proto(IpProtocol::Tcp);
        assert_eq!(m.to_string(), "proto=tcp,tp_dst=80");
    }
}
