//! Strongly-typed identifiers.
//!
//! Every entity in the simulator (node, port, link, flow, OpenFlow table,
//! group, meter) gets its own newtype so that indices cannot be mixed up at
//! compile time. All ids are small `Copy` integers; display is `kind#n`.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the id from a raw usize index.
            #[inline]
            pub const fn from_index(i: usize) -> Self {
                $name(i as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "#{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "#{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifier of a topology node (host or switch).
    NodeId, u32, "node"
);
id_type!(
    /// Identifier of a directed link (each physical cable is two directed links).
    LinkId, u32, "link"
);
id_type!(
    /// Identifier of an active data flow.
    FlowId, u64, "flow"
);
id_type!(
    /// OpenFlow group identifier.
    GroupId, u32, "group"
);
id_type!(
    /// OpenFlow meter identifier.
    MeterId, u32, "meter"
);

/// A switch port number (1-based like OpenFlow; 0 is reserved/invalid).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct PortNo(pub u16);

impl PortNo {
    /// The OpenFlow `CONTROLLER` logical port.
    pub const CONTROLLER: PortNo = PortNo(u16::MAX);
    /// The OpenFlow `FLOOD` logical port (all ports except ingress).
    pub const FLOOD: PortNo = PortNo(u16::MAX - 1);
    /// Invalid/unset port.
    pub const NONE: PortNo = PortNo(0);

    /// True for physical (non-logical, non-zero) ports.
    pub const fn is_physical(self) -> bool {
        self.0 != 0 && self.0 < PortNo::FLOOD.0
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::CONTROLLER => write!(f, "port#CONTROLLER"),
            PortNo::FLOOD => write!(f, "port#FLOOD"),
            _ => write!(f, "port#{}", self.0),
        }
    }
}

impl fmt::Debug for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An OpenFlow table id within a switch pipeline (0 is the first table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct TableId(pub u8);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

pub use self::{GroupId as OfGroupId, MeterId as OfMeterId};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_index() {
        assert_eq!(NodeId::from_index(42).index(), 42);
        assert_eq!(FlowId::from_index(7).index(), 7);
        assert_eq!(LinkId::from(3u32).0, 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(5).to_string(), "node#5");
        assert_eq!(PortNo(3).to_string(), "port#3");
        assert_eq!(PortNo::CONTROLLER.to_string(), "port#CONTROLLER");
        assert_eq!(TableId(0).to_string(), "table#0");
    }

    #[test]
    fn port_classification() {
        assert!(PortNo(1).is_physical());
        assert!(!PortNo::NONE.is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::FLOOD.is_physical());
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FlowId(9) > FlowId(3));
    }
}
