//! The flow abstraction.
//!
//! The paper defines a data flow as "an aggregate of packets with equal
//! values of the header fields, but with different traffic rates". The
//! [`FlowKey`] carries those header fields — the subset of the OpenFlow
//! 12-tuple the policy set of the paper needs (L2 addresses, EtherType,
//! VLAN, L3 addresses, IP protocol, L4 ports).

use crate::addr::MacAddr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// IP protocol numbers used by the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp = 1,
    /// TCP (6).
    Tcp = 6,
    /// UDP (17).
    Udp = 17,
}

impl IpProtocol {
    /// Protocol number as in the IP header.
    pub const fn number(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
        }
    }
}

/// Common EtherType values.
pub mod ether_type {
    /// IPv4.
    pub const IPV4: u16 = 0x0800;
    /// ARP.
    pub const ARP: u16 = 0x0806;
    /// VLAN-tagged frame (802.1Q).
    pub const VLAN: u16 = 0x8100;
}

/// Application classes used for application-specific peering policies and
/// workload generation. Each class implies a canonical transport and
/// destination port (see [`AppClass::transport`] / [`AppClass::dst_port`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AppClass {
    /// Plain web traffic (TCP/80).
    Http,
    /// TLS web traffic (TCP/443).
    Https,
    /// DNS (UDP/53).
    Dns,
    /// Video streaming (TCP/8080 in our synthetic mix).
    Video,
    /// Mail (TCP/25).
    Mail,
    /// NTP (UDP/123).
    Ntp,
    /// Anything else (ephemeral ports).
    Other,
}

impl AppClass {
    /// All classes, in a stable order (useful for iteration and reports).
    pub const ALL: [AppClass; 7] = [
        AppClass::Http,
        AppClass::Https,
        AppClass::Dns,
        AppClass::Video,
        AppClass::Mail,
        AppClass::Ntp,
        AppClass::Other,
    ];

    /// Canonical transport protocol of the class.
    pub const fn transport(self) -> IpProtocol {
        match self {
            AppClass::Dns | AppClass::Ntp => IpProtocol::Udp,
            _ => IpProtocol::Tcp,
        }
    }

    /// Canonical destination (server) port of the class.
    pub const fn dst_port(self) -> u16 {
        match self {
            AppClass::Http => 80,
            AppClass::Https => 443,
            AppClass::Dns => 53,
            AppClass::Video => 8080,
            AppClass::Mail => 25,
            AppClass::Ntp => 123,
            AppClass::Other => 49152,
        }
    }

    /// Classifies a (protocol, destination port) pair back into a class.
    pub fn classify(proto: IpProtocol, dst_port: u16) -> AppClass {
        match (proto, dst_port) {
            (IpProtocol::Tcp, 80) => AppClass::Http,
            (IpProtocol::Tcp, 443) => AppClass::Https,
            (IpProtocol::Udp, 53) => AppClass::Dns,
            (IpProtocol::Tcp, 8080) => AppClass::Video,
            (IpProtocol::Tcp, 25) => AppClass::Mail,
            (IpProtocol::Udp, 123) => AppClass::Ntp,
            _ => AppClass::Other,
        }
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppClass::Http => "http",
            AppClass::Https => "https",
            AppClass::Dns => "dns",
            AppClass::Video => "video",
            AppClass::Mail => "mail",
            AppClass::Ntp => "ntp",
            AppClass::Other => "other",
        };
        write!(f, "{s}")
    }
}

/// Header fields identifying a flow — the paper's "aggregate of packets with
/// equal values of the header fields".
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source MAC address.
    pub eth_src: MacAddr,
    /// Destination MAC address.
    pub eth_dst: MacAddr,
    /// EtherType (0x0800 for IPv4).
    pub eth_type: u16,
    /// VLAN id, `None` when untagged.
    pub vlan: Option<u16>,
    /// Source IPv4 address.
    pub ip_src: Ipv4Addr,
    /// Destination IPv4 address.
    pub ip_dst: Ipv4Addr,
    /// IP protocol.
    pub ip_proto: IpProtocol,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl FlowKey {
    /// Convenience constructor for an IPv4 TCP flow.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        tp_src: u16,
        tp_dst: u16,
    ) -> Self {
        FlowKey {
            eth_src,
            eth_dst,
            eth_type: ether_type::IPV4,
            vlan: None,
            ip_src,
            ip_dst,
            ip_proto: IpProtocol::Tcp,
            tp_src,
            tp_dst,
        }
    }

    /// Convenience constructor for an IPv4 UDP flow.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        tp_src: u16,
        tp_dst: u16,
    ) -> Self {
        FlowKey {
            ip_proto: IpProtocol::Udp,
            ..FlowKey::tcp(eth_src, eth_dst, ip_src, ip_dst, tp_src, tp_dst)
        }
    }

    /// The application class implied by (protocol, dst port).
    pub fn app_class(&self) -> AppClass {
        AppClass::classify(self.ip_proto, self.tp_dst)
    }

    /// The key of the reverse direction (addresses and ports swapped).
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            eth_src: self.eth_dst,
            eth_dst: self.eth_src,
            ip_src: self.ip_dst,
            ip_dst: self.ip_src,
            tp_src: self.tp_dst,
            tp_dst: self.tp_src,
            ..*self
        }
    }

    /// A deterministic 64-bit hash of the key, stable across runs and
    /// platforms (FNV-1a). Used for ECMP bucket selection so that a flow
    /// always hashes to the same path.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut feed = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        for b in self.eth_src.octets() {
            feed(b);
        }
        for b in self.eth_dst.octets() {
            feed(b);
        }
        feed((self.eth_type >> 8) as u8);
        feed(self.eth_type as u8);
        let vlan = self.vlan.map(|v| v + 1).unwrap_or(0);
        feed((vlan >> 8) as u8);
        feed(vlan as u8);
        for b in self.ip_src.octets() {
            feed(b);
        }
        for b in self.ip_dst.octets() {
            feed(b);
        }
        feed(self.ip_proto.number());
        feed((self.tp_src >> 8) as u8);
        feed(self.tp_src as u8);
        feed((self.tp_dst >> 8) as u8);
        feed(self.tp_dst as u8);
        h
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{} [{} -> {}]",
            self.ip_proto,
            self.ip_src,
            self.tp_src,
            self.ip_dst,
            self.tp_dst,
            self.eth_src,
            self.eth_dst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(sport: u16, dport: u16) -> FlowKey {
        FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            sport,
            dport,
        )
    }

    #[test]
    fn app_class_roundtrip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::classify(c.transport(), c.dst_port()), c);
        }
    }

    #[test]
    fn app_class_of_key() {
        assert_eq!(key(30000, 80).app_class(), AppClass::Http);
        assert_eq!(key(30000, 443).app_class(), AppClass::Https);
        assert_eq!(key(30000, 12345).app_class(), AppClass::Other);
        let k = FlowKey::udp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            53,
        );
        assert_eq!(k.app_class(), AppClass::Dns);
    }

    #[test]
    fn reversed_swaps_everything() {
        let k = key(1111, 80);
        let r = k.reversed();
        assert_eq!(r.eth_src, k.eth_dst);
        assert_eq!(r.ip_dst, k.ip_src);
        assert_eq!(r.tp_src, 80);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn stable_hash_is_deterministic_and_spreads() {
        let a = key(1111, 80).stable_hash();
        let b = key(1111, 80).stable_hash();
        assert_eq!(a, b);
        // different ports should (with overwhelming probability) differ
        let c = key(1112, 80).stable_hash();
        assert_ne!(a, c);
        // vlan None vs Some(0) must differ (encoding uses v+1)
        let mut k1 = key(1, 2);
        let mut k2 = key(1, 2);
        k1.vlan = None;
        k2.vlan = Some(0);
        assert_ne!(k1.stable_hash(), k2.stable_hash());
    }

    #[test]
    fn serde_roundtrip() {
        let k = key(1234, 443);
        let js = serde_json::to_string(&k).unwrap();
        let back: FlowKey = serde_json::from_str(&js).unwrap();
        assert_eq!(back, k);
    }
}
