//! # horse-types
//!
//! Network primitives shared by every crate of the Horse simulator:
//!
//! * [`addr`] — MAC and IPv4 addresses, IPv4 prefixes.
//! * [`id`] — strongly-typed identifiers (nodes, ports, links, flows, …).
//! * [`units`] — simulation time, data rates and byte sizes.
//! * [`flow`] — the flow key (the paper's "aggregate of packets with equal
//!   values of the header fields") and application classes.
//!
//! The crate is dependency-light (only `serde`) and every type is `Copy`
//! where possible so the hot simulation loops stay allocation-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod flow;
pub mod id;
pub mod snap;
pub mod units;

pub use addr::{Ipv4Net, MacAddr};
pub use flow::{AppClass, FlowKey, IpProtocol};
pub use id::{FlowId, LinkId, NodeId, PortNo, TableId};
pub use snap::{Snap, SnapError, SnapReader, SnapWriter};
pub use units::{ByteSize, Rate, SimDuration, SimTime};
