//! `Snap` — the canonical binary state codec behind simulation
//! checkpoints.
//!
//! A checkpoint must satisfy two properties JSON cannot give us cheaply:
//!
//! 1. **Losslessness** — every `f64` is stored as its raw bit pattern
//!    ([`f64::to_bits`]), so restored state is *bit*-identical, including
//!    infinities and signed zeros that text formats mangle or reject.
//! 2. **Canonical form** — one state has exactly one encoding. Unordered
//!    collections serialize in sorted key order, so
//!    `serialize → restore → re-serialize` is byte-identical (the
//!    round-trip property the checkpoint tests pin down).
//!
//! The format is deliberately boring: fixed-width little-endian scalars,
//! `u64` length prefixes, `u8` enum tags. No varints, no compression —
//! checkpoints are transient artifacts read by the same build that wrote
//! them, guarded by the snapshot header's version field (owned by
//! `horse-core`).
//!
//! Types that already derive the vendored `serde` can get `Snap` for free
//! through [`snap_via_serde`]/[`unsnap_via_serde`], which encode the
//! serde [`Value`](serde::Value) tree in binary (floats as bit patterns,
//! so the losslessness guarantee holds there too). Runtime-only types
//! implement the trait by hand, usually via [`impl_snap_struct!`](crate::impl_snap_struct).

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

/// Error produced when decoding a snapshot fails (truncated buffer, bad
/// tag, or a count that does not fit the platform).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset at which decoding failed.
    pub at: usize,
}

impl SnapError {
    /// Builds an error at byte offset `at` — for custom decoders layered
    /// over [`SnapReader`].
    pub fn new(msg: impl Into<String>, at: usize) -> Self {
        SnapError {
            msg: msg.into(),
            at,
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot decode error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for SnapError {}

/// Append-only encoder for the canonical binary form.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its raw bit pattern (lossless).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length/count (`usize` as `u64`).
    pub fn len_prefix(&mut self, n: usize) {
        self.u64(n as u64);
    }

    /// Writes raw bytes with a length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len_prefix(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes a UTF-8 string with a length prefix.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Cursor-based decoder over an encoded buffer.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps an encoded buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed (decoders use this to
    /// reject trailing garbage).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::new(
                format!("need {n} bytes, {} remain", self.remaining()),
                self.pos,
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length/count, bounded by the bytes actually remaining so
    /// a corrupt count cannot trigger a huge allocation.
    pub fn len_prefix(&mut self) -> Result<usize, SnapError> {
        let at = self.pos;
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(SnapError::new(
                format!("count {n} exceeds remaining {} bytes", self.remaining()),
                at,
            ));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_prefix()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let at = self.pos;
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| SnapError::new(format!("invalid UTF-8: {e}"), at))
    }
}

/// Canonical binary state serialization. See the module docs for the
/// guarantees implementations must uphold (losslessness + one encoding
/// per state).
pub trait Snap: Sized {
    /// Appends the canonical encoding of `self`.
    fn snap(&self, w: &mut SnapWriter);
    /// Decodes one value from the cursor.
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError>;
}

macro_rules! snap_scalar {
    ($ty:ty, $wm:ident, $rm:ident) => {
        impl Snap for $ty {
            fn snap(&self, w: &mut SnapWriter) {
                w.$wm(*self);
            }
            fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
                r.$rm()
            }
        }
    };
}

snap_scalar!(u8, u8, u8);
snap_scalar!(u16, u16, u16);
snap_scalar!(u32, u32, u32);
snap_scalar!(u64, u64, u64);
snap_scalar!(i64, i64, i64);
snap_scalar!(f64, f64, f64);

impl Snap for bool {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::new(format!("bad bool byte {other}"), at)),
        }
    }
}

impl Snap for usize {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let at = r.position();
        let v = r.u64()?;
        usize::try_from(v).map_err(|_| SnapError::new(format!("usize overflow: {v}"), at))
    }
}

impl Snap for String {
    fn snap(&self, w: &mut SnapWriter) {
        w.str(self);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        r.str()
    }
}

impl Snap for Ipv4Addr {
    fn snap(&self, w: &mut SnapWriter) {
        w.u32(u32::from(*self));
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(Ipv4Addr::from(r.u32()?))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.snap(w);
            }
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let at = r.position();
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            other => Err(SnapError::new(format!("bad Option tag {other}"), at)),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push(T::unsnap(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn snap(&self, w: &mut SnapWriter) {
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::unsnap(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::new("array length mismatch", r.position()))
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap, D: Snap> Snap for (A, B, C, D) {
    fn snap(&self, w: &mut SnapWriter) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
        self.3.snap(w);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?, D::unsnap(r)?))
    }
}

/// Unordered maps encode in ascending key order — the canonical form.
impl<K: Snap + Ord + Hash + Clone, V: Snap> Snap for HashMap<K, V> {
    fn snap(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        w.len_prefix(keys.len());
        for k in keys {
            k.snap(w);
            self[k].snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = HashMap::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Unordered sets encode in ascending order — the canonical form.
impl<T: Snap + Ord + Hash + Clone> Snap for HashSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        w.len_prefix(items.len());
        for v in items {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = HashSet::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.insert(T::unsnap(r)?);
        }
        Ok(out)
    }
}

/// Ordered sets are already canonical — encode in iteration order.
impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::unsnap(r)?);
        }
        Ok(out)
    }
}

/// Deques encode front to back (the order iteration and pops observe).
impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, w: &mut SnapWriter) {
        w.len_prefix(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let n = r.len_prefix()?;
        let mut out = VecDeque::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            out.push_back(T::unsnap(r)?);
        }
        Ok(out)
    }
}

/// Implements [`Snap`] for a struct by encoding its named fields in the
/// listed order. Every field must itself implement `Snap`.
///
/// ```
/// use horse_types::impl_snap_struct;
/// use horse_types::snap::{Snap, SnapReader, SnapWriter};
///
/// #[derive(Debug, PartialEq)]
/// struct P { x: u32, y: f64 }
/// impl_snap_struct!(P { x, y });
///
/// let mut w = SnapWriter::new();
/// P { x: 7, y: -0.0 }.snap(&mut w);
/// let bytes = w.into_bytes();
/// let p = P::unsnap(&mut SnapReader::new(&bytes)).unwrap();
/// assert_eq!(p, P { x: 7, y: -0.0 });
/// assert!(p.y.is_sign_negative(), "lossless floats");
/// ```
#[macro_export]
macro_rules! impl_snap_struct {
    ($name:ty { $($field:ident),* $(,)? }) => {
        impl $crate::snap::Snap for $name {
            fn snap(&self, w: &mut $crate::snap::SnapWriter) {
                $( $crate::snap::Snap::snap(&self.$field, w); )*
            }
            fn unsnap(
                r: &mut $crate::snap::SnapReader,
            ) -> Result<Self, $crate::snap::SnapError> {
                Ok(Self {
                    $( $field: $crate::snap::Snap::unsnap(r)?, )*
                })
            }
        }
    };
}

/// Implements [`Snap`] for a type that already implements the vendored
/// `serde` traits, by binary-encoding its [`Value`](serde::Value) tree
/// (see [`snap_via_serde`]).
#[macro_export]
macro_rules! impl_snap_via_serde {
    ($($name:ty),* $(,)?) => {
        $(
            impl $crate::snap::Snap for $name {
                fn snap(&self, w: &mut $crate::snap::SnapWriter) {
                    $crate::snap::snap_via_serde(self, w);
                }
                fn unsnap(
                    r: &mut $crate::snap::SnapReader,
                ) -> Result<Self, $crate::snap::SnapError> {
                    $crate::snap::unsnap_via_serde(r)
                }
            }
        )*
    };
}

// ---------------------------------------------------------------------
// serde bridge: binary-encode the vendored serde Value tree. Floats are
// stored as bit patterns, so this path is as lossless as hand-written
// impls; derive output is deterministic (struct fields in declaration
// order), so the canonical-form guarantee holds as long as the
// serialized type does not itself iterate an unordered container (the
// workspace's derived types all use Vec/BTreeMap-like orderings).
// ---------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_UINT: u8 = 3;
const VAL_FLOAT: u8 = 4;
const VAL_STR: u8 = 5;
const VAL_SEQ: u8 = 6;
const VAL_MAP: u8 = 7;

fn snap_value(v: &serde::Value, w: &mut SnapWriter) {
    match v {
        serde::Value::Null => w.u8(VAL_NULL),
        serde::Value::Bool(b) => {
            w.u8(VAL_BOOL);
            w.u8(*b as u8);
        }
        serde::Value::Number(serde::Number::Int(i)) => {
            w.u8(VAL_INT);
            w.i64(*i);
        }
        serde::Value::Number(serde::Number::UInt(u)) => {
            w.u8(VAL_UINT);
            w.u64(*u);
        }
        serde::Value::Number(serde::Number::Float(f)) => {
            w.u8(VAL_FLOAT);
            w.f64(*f);
        }
        serde::Value::Str(s) => {
            w.u8(VAL_STR);
            w.str(s);
        }
        serde::Value::Seq(items) => {
            w.u8(VAL_SEQ);
            w.len_prefix(items.len());
            for item in items {
                snap_value(item, w);
            }
        }
        serde::Value::Map(entries) => {
            w.u8(VAL_MAP);
            w.len_prefix(entries.len());
            for (k, val) in entries {
                w.str(k);
                snap_value(val, w);
            }
        }
    }
}

fn unsnap_value(r: &mut SnapReader) -> Result<serde::Value, SnapError> {
    let at = r.position();
    Ok(match r.u8()? {
        VAL_NULL => serde::Value::Null,
        VAL_BOOL => serde::Value::Bool(r.u8()? != 0),
        VAL_INT => serde::Value::Number(serde::Number::Int(r.i64()?)),
        VAL_UINT => serde::Value::Number(serde::Number::UInt(r.u64()?)),
        VAL_FLOAT => serde::Value::Number(serde::Number::Float(r.f64()?)),
        VAL_STR => serde::Value::Str(r.str()?),
        VAL_SEQ => {
            let n = r.len_prefix()?;
            let mut items = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                items.push(unsnap_value(r)?);
            }
            serde::Value::Seq(items)
        }
        VAL_MAP => {
            let n = r.len_prefix()?;
            let mut entries = Vec::with_capacity(n.min(r.remaining()));
            for _ in 0..n {
                let k = r.str()?;
                entries.push((k, unsnap_value(r)?));
            }
            serde::Value::Map(entries)
        }
        other => return Err(SnapError::new(format!("bad Value tag {other}"), at)),
    })
}

/// Encodes any `serde::Serialize` type through its `Value` tree.
pub fn snap_via_serde<T: serde::Serialize + ?Sized>(v: &T, w: &mut SnapWriter) {
    snap_value(&v.to_value(), w);
}

/// Decodes any `serde::Deserialize` type through its `Value` tree.
pub fn unsnap_via_serde<T: serde::Deserialize>(r: &mut SnapReader) -> Result<T, SnapError> {
    let at = r.position();
    let v = unsnap_value(r)?;
    T::from_value(&v).map_err(|e| SnapError::new(format!("serde decode: {e}"), at))
}

// ---------------------------------------------------------------------
// Snap for this crate's own primitives. All are pub-field newtypes, so
// the encodings are their raw scalar forms — Rate deliberately bypasses
// its clamping constructor to restore the exact stored bits.
// ---------------------------------------------------------------------

impl Snap for crate::units::SimTime {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.as_nanos());
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::units::SimTime::from_nanos(r.u64()?))
    }
}

impl Snap for crate::units::SimDuration {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.as_nanos());
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::units::SimDuration::from_nanos(r.u64()?))
    }
}

impl Snap for crate::units::Rate {
    fn snap(&self, w: &mut SnapWriter) {
        w.f64(self.0);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::units::Rate(r.f64()?))
    }
}

impl Snap for crate::units::ByteSize {
    fn snap(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        Ok(crate::units::ByteSize(r.u64()?))
    }
}

macro_rules! snap_id {
    ($($ty:ty: $inner:ident),* $(,)?) => {
        $(
            impl Snap for $ty {
                fn snap(&self, w: &mut SnapWriter) {
                    w.$inner(self.0);
                }
                fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
                    Ok(Self(r.$inner()?))
                }
            }
        )*
    };
}

snap_id!(
    crate::id::NodeId: u32,
    crate::id::LinkId: u32,
    crate::id::GroupId: u32,
    crate::id::MeterId: u32,
    crate::id::FlowId: u64,
    crate::id::PortNo: u16,
    crate::id::TableId: u8,
);

impl Snap for crate::addr::MacAddr {
    fn snap(&self, w: &mut SnapWriter) {
        for b in self.octets() {
            w.u8(b);
        }
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let mut o = [0u8; 6];
        for b in &mut o {
            *b = r.u8()?;
        }
        Ok(crate::addr::MacAddr(o))
    }
}

impl Snap for crate::addr::Ipv4Net {
    fn snap(&self, w: &mut SnapWriter) {
        self.addr.snap(w);
        w.u8(self.len);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let addr = Ipv4Addr::unsnap(r)?;
        let len = r.u8()?;
        Ok(crate::addr::Ipv4Net { addr, len })
    }
}

impl Snap for crate::flow::IpProtocol {
    fn snap(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn unsnap(r: &mut SnapReader) -> Result<Self, SnapError> {
        let at = r.position();
        match r.u8()? {
            1 => Ok(crate::flow::IpProtocol::Icmp),
            6 => Ok(crate::flow::IpProtocol::Tcp),
            17 => Ok(crate::flow::IpProtocol::Udp),
            other => Err(SnapError::new(format!("bad IpProtocol {other}"), at)),
        }
    }
}

impl_snap_struct!(crate::flow::FlowKey {
    eth_src,
    eth_dst,
    eth_type,
    vlan,
    ip_src,
    ip_dst,
    ip_proto,
    tp_src,
    tp_dst,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowId, FlowKey, MacAddr, Rate, SimTime};

    fn round_trip<T: Snap + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.snap(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::unsnap(&mut r).unwrap();
        assert!(r.is_exhausted(), "decoder left {} bytes", r.remaining());
        assert_eq!(back, v);
        // canonical: re-encoding is byte-identical
        let mut w2 = SnapWriter::new();
        back.snap(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(String::from("héllo"));
        round_trip(Ipv4Addr::new(10, 1, 2, 3));
    }

    #[test]
    fn floats_are_lossless() {
        for v in [
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            f64::MAX,
        ] {
            let mut w = SnapWriter::new();
            v.snap(&mut w);
            let bytes = w.into_bytes();
            let back = f64::unsnap(&mut SnapReader::new(&bytes)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        // NaN keeps its exact payload too.
        let nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = SnapWriter::new();
        nan.snap(&mut w);
        let b = w.into_bytes();
        assert_eq!(
            f64::unsnap(&mut SnapReader::new(&b)).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip((1u32, String::from("x"), 2.5f64));
        round_trip([1u8, 2, 3, 4, 5, 6]);
        let mut m = HashMap::new();
        m.insert(3u32, String::from("c"));
        m.insert(1, String::from("a"));
        m.insert(2, String::from("b"));
        round_trip(m);
        let mut s = HashSet::new();
        s.extend([9u64, 1, 5]);
        round_trip(s);
    }

    #[test]
    fn hashmap_encoding_is_canonical() {
        // Two maps with identical content but different insertion order
        // must encode identically.
        let mut a = HashMap::new();
        for k in 0..100u32 {
            a.insert(k, k as u64);
        }
        let mut b = HashMap::new();
        for k in (0..100u32).rev() {
            b.insert(k, k as u64);
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        a.snap(&mut wa);
        b.snap(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(SimTime::from_nanos(123_456_789));
        round_trip(Rate(1.5e9));
        round_trip(Rate(f64::INFINITY)); // bypasses the clamping ctor
        round_trip(FlowId(42));
        round_trip(FlowKey::tcp(
            MacAddr::local_from_id(1),
            MacAddr::local_from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1234,
            80,
        ));
    }

    #[test]
    fn serde_bridge_round_trips_bitwise() {
        // FlowKey also derives serde; the Value bridge must agree.
        let key = FlowKey::tcp(
            MacAddr::local_from_id(3),
            MacAddr::local_from_id(4),
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 2),
            4000,
            443,
        );
        let mut w = SnapWriter::new();
        snap_via_serde(&key, &mut w);
        let bytes = w.into_bytes();
        let back: FlowKey = unsnap_via_serde(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(back, key);

        // Floats inside serde values keep exact bits.
        let v = serde::Value::Number(serde::Number::Float(-0.0));
        let mut w = SnapWriter::new();
        snap_value(&v, &mut w);
        let b = w.into_bytes();
        match unsnap_value(&mut SnapReader::new(&b)).unwrap() {
            serde::Value::Number(serde::Number::Float(f)) => {
                assert_eq!(f.to_bits(), (-0.0f64).to_bits())
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_buffers_error_cleanly() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].snap(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Vec::<u64>::unsnap(&mut SnapReader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} decoded");
        }
        // A huge count prefix fails fast instead of allocating.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let b = w.into_bytes();
        assert!(Vec::<u8>::unsnap(&mut SnapReader::new(&b)).is_err());
    }

    #[test]
    fn bad_tags_are_rejected() {
        let b = [7u8];
        assert!(bool::unsnap(&mut SnapReader::new(&b)).is_err());
        assert!(Option::<u8>::unsnap(&mut SnapReader::new(&b)).is_err());
        let b = [99u8];
        assert!(unsnap_value(&mut SnapReader::new(&b)).is_err());
    }
}
