//! Simulation time, data-rate and size units.
//!
//! * [`SimTime`] — absolute simulated time, nanoseconds since simulation
//!   start (u64 ⇒ ~584 simulated years of range).
//! * [`SimDuration`] — a span of simulated time.
//! * [`Rate`] — bits per second as `f64` (fluid rates are continuous).
//! * [`ByteSize`] — byte counts (u64).
//!
//! All arithmetic saturates rather than wrapping so a mis-configured
//! scenario fails loudly in tests instead of silently warping time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Absolute simulated time in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Fractional seconds (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference between two times.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.9}s)", self.as_secs_f64())
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from fractional seconds, saturating at the range
    /// limits and treating NaN/negative as zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Fractional seconds (lossy, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({self})")
    }
}

/// A data rate in bits per second.
///
/// Rates are continuous quantities in the fluid model, hence `f64`.
/// Negative and NaN rates are invalid; constructors clamp them to zero.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize, Default)]
pub struct Rate(pub f64);

impl Rate {
    /// Zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// Bits per second.
    pub fn bps(v: f64) -> Self {
        Rate(if v.is_finite() && v > 0.0 { v } else { 0.0 })
    }

    /// Kilobits per second (10^3).
    pub fn kbps(v: f64) -> Self {
        Rate::bps(v * 1e3)
    }

    /// Megabits per second (10^6).
    pub fn mbps(v: f64) -> Self {
        Rate::bps(v * 1e6)
    }

    /// Gigabits per second (10^9).
    pub fn gbps(v: f64) -> Self {
        Rate::bps(v * 1e9)
    }

    /// Raw bits per second.
    pub const fn as_bps(self) -> f64 {
        self.0
    }

    /// Rate in Mbit/s.
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Rate in Gbit/s.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// True if the rate is (numerically) zero.
    pub fn is_zero(self) -> bool {
        self.0 <= f64::EPSILON
    }

    /// Time needed to transfer `bytes` at this rate; `None` if the rate is
    /// zero (the transfer never completes).
    pub fn time_to_send(self, bytes: ByteSize) -> Option<SimDuration> {
        if self.is_zero() {
            None
        } else {
            Some(SimDuration::from_secs_f64(bytes.as_bits() as f64 / self.0))
        }
    }

    /// Bytes transferred over `d` at this rate.
    pub fn bytes_over(self, d: SimDuration) -> f64 {
        self.0 * d.as_secs_f64() / 8.0
    }

    /// Component-wise minimum.
    pub fn min(self, other: Rate) -> Rate {
        Rate(self.0.min(other.0))
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, r: Rate) -> Rate {
        Rate(self.0 + r.0)
    }
}

impl Sub for Rate {
    type Output = Rate;
    fn sub(self, r: Rate) -> Rate {
        Rate((self.0 - r.0).max(0.0))
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    fn mul(self, k: f64) -> Rate {
        Rate::bps(self.0 * k)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.1}bps", self.0)
        }
    }
}

impl fmt::Debug for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rate({self})")
    }
}

/// A byte count.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn bytes(v: u64) -> Self {
        ByteSize(v)
    }

    /// Kibibytes (2^10).
    pub const fn kib(v: u64) -> Self {
        ByteSize(v * 1024)
    }

    /// Mebibytes (2^20).
    pub const fn mib(v: u64) -> Self {
        ByteSize(v * 1024 * 1024)
    }

    /// Gibibytes (2^30).
    pub const fn gib(v: u64) -> Self {
        ByteSize(v * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Bit count (saturating).
    pub const fn as_bits(self) -> u64 {
        self.0.saturating_mul(8)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, b: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(b.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, b: ByteSize) {
        self.0 = self.0.saturating_add(b.0);
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1 << 30 {
            write!(f, "{:.2}GiB", self.0 as f64 / (1u64 << 30) as f64)
        } else if self.0 >= 1 << 20 {
            write!(f, "{:.2}MiB", self.0 as f64 / (1u64 << 20) as f64)
        } else if self.0 >= 1 << 10 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn time_arith() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_nanos(), 500_000_000);
        // saturating: earlier - later == 0
        assert_eq!((SimTime::ZERO - t).as_nanos(), 0);
    }

    #[test]
    fn duration_from_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(1e30).as_nanos(), u64::MAX);
    }

    #[test]
    fn duration_display_scales() {
        assert_eq!(SimDuration::from_nanos(10).to_string(), "10ns");
        assert_eq!(SimDuration::from_micros(10).to_string(), "10.000us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10.000ms");
        assert_eq!(SimDuration::from_secs(10).to_string(), "10.000s");
    }

    #[test]
    fn rate_constructors_clamp() {
        assert_eq!(Rate::bps(-5.0).as_bps(), 0.0);
        assert_eq!(Rate::bps(f64::NAN).as_bps(), 0.0);
        assert_eq!(Rate::mbps(1.0).as_bps(), 1e6);
        assert_eq!(Rate::gbps(2.0).as_mbps(), 2000.0);
    }

    #[test]
    fn rate_time_to_send() {
        let r = Rate::mbps(8.0); // 1 MB/s
        let d = r.time_to_send(ByteSize::bytes(1_000_000)).unwrap();
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(Rate::ZERO.time_to_send(ByteSize::bytes(1)).is_none());
    }

    #[test]
    fn rate_bytes_over() {
        let r = Rate::mbps(8.0);
        let b = r.bytes_over(SimDuration::from_secs(2));
        assert!((b - 2_000_000.0).abs() < 1.0);
    }

    #[test]
    fn rate_sub_clamps_at_zero() {
        assert_eq!((Rate::mbps(1.0) - Rate::mbps(2.0)).as_bps(), 0.0);
    }

    #[test]
    fn bytesize_units() {
        assert_eq!(ByteSize::kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::mib(1).as_bytes(), 1 << 20);
        assert_eq!(ByteSize::gib(1).as_bits(), (1u64 << 30) * 8);
    }

    #[test]
    fn bytesize_saturating() {
        assert_eq!(
            ByteSize::bytes(1).saturating_sub(ByteSize::bytes(5)),
            ByteSize::ZERO
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rate::gbps(1.5).to_string(), "1.500Gbps");
        assert_eq!(ByteSize::bytes(100).to_string(), "100B");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000000s");
    }
}
