//! MAC and IPv4 addressing.
//!
//! The simulator abstracts packets into flows, but flow keys still carry
//! real header fields so that OpenFlow-style matching (exact and prefix
//! wildcards) behaves like it would on a switch.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
///
/// ```
/// use horse_types::MacAddr;
/// let m: MacAddr = "02:00:00:00:00:2a".parse().unwrap();
/// assert_eq!(m.to_string(), "02:00:00:00:00:2a");
/// assert_eq!(MacAddr::from_u64(0x2a).octets()[5], 0x2a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address (used as "unspecified").
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a MAC from the low 48 bits of `v` (big-endian order).
    pub const fn from_u64(v: u64) -> Self {
        MacAddr([
            (v >> 40) as u8,
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ])
    }

    /// Returns the address as a u64 (high 16 bits zero).
    pub const fn to_u64(self) -> u64 {
        let o = self.0;
        ((o[0] as u64) << 40)
            | ((o[1] as u64) << 32)
            | ((o[2] as u64) << 24)
            | ((o[3] as u64) << 16)
            | ((o[4] as u64) << 8)
            | (o[5] as u64)
    }

    /// Raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// True if this is the broadcast address.
    pub const fn is_broadcast(self) -> bool {
        self.to_u64() == MacAddr::BROADCAST.to_u64()
    }

    /// True if the group (multicast) bit is set.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Locally-administered unicast MAC derived from a small integer id;
    /// convenient for synthetic hosts (`02:…` prefix keeps it unicast+local).
    pub const fn local_from_id(id: u32) -> Self {
        MacAddr::from_u64(0x0200_0000_0000 | id as u64)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

/// Error returned when parsing a [`MacAddr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError(pub String);

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut n = 0;
        for part in s.split(':') {
            if n >= 6 {
                return Err(MacParseError(s.to_string()));
            }
            octets[n] = u8::from_str_radix(part, 16).map_err(|_| MacParseError(s.to_string()))?;
            n += 1;
        }
        if n != 6 {
            return Err(MacParseError(s.to_string()));
        }
        Ok(MacAddr(octets))
    }
}

/// An IPv4 prefix (`addr/len`) used for wildcard matching and blackholing.
///
/// ```
/// use horse_types::Ipv4Net;
/// use std::net::Ipv4Addr;
/// let net: Ipv4Net = "10.0.0.0/8".parse().unwrap();
/// assert!(net.contains(Ipv4Addr::new(10, 200, 3, 4)));
/// assert!(!net.contains(Ipv4Addr::new(11, 0, 0, 1)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    /// Network address (host bits may be set; they are masked on use).
    pub addr: Ipv4Addr,
    /// Prefix length, `0..=32`.
    pub len: u8,
}

impl Ipv4Net {
    /// Creates a prefix; `len` is clamped to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        Ipv4Net {
            addr,
            len: len.min(32),
        }
    }

    /// A /32 host route.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Net { addr, len: 32 }
    }

    /// The match-everything prefix `0.0.0.0/0`.
    pub const ANY: Ipv4Net = Ipv4Net {
        addr: Ipv4Addr::UNSPECIFIED,
        len: 0,
    };

    /// Bitmask corresponding to the prefix length.
    pub fn mask(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len as u32)
        }
    }

    /// True if `ip` falls inside the prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        let m = self.mask();
        (u32::from(ip) & m) == (u32::from(self.addr) & m)
    }

    /// True if the two prefixes share at least one address.
    pub fn overlaps(&self, other: &Ipv4Net) -> bool {
        let m = self.mask() & other.mask();
        (u32::from(self.addr) & m) == (u32::from(other.addr) & m)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4Net({self})")
    }
}

/// Error returned when parsing an [`Ipv4Net`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4NetParseError(pub String);

impl fmt::Display for Ipv4NetParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 prefix: {}", self.0)
    }
}

impl std::error::Error for Ipv4NetParseError {}

impl FromStr for Ipv4Net {
    type Err = Ipv4NetParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = match s.split_once('/') {
            Some((a, l)) => (a, l),
            None => (s, "32"),
        };
        let addr: Ipv4Addr = a.parse().map_err(|_| Ipv4NetParseError(s.to_string()))?;
        let len: u8 = l.parse().map_err(|_| Ipv4NetParseError(s.to_string()))?;
        if len > 32 {
            return Err(Ipv4NetParseError(s.to_string()));
        }
        Ok(Ipv4Net { addr, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_roundtrip_u64() {
        for v in [
            0u64,
            1,
            0xffff_ffff_ffff,
            0x0200_0000_002a,
            0x1234_5678_9abc,
        ] {
            assert_eq!(MacAddr::from_u64(v).to_u64(), v);
        }
    }

    #[test]
    fn mac_parse_display_roundtrip() {
        let m: MacAddr = "de:ad:be:ef:00:2a".parse().unwrap();
        assert_eq!(m.to_string(), "de:ad:be:ef:00:2a");
        assert_eq!(m.octets(), [0xde, 0xad, 0xbe, 0xef, 0x00, 0x2a]);
    }

    #[test]
    fn mac_parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("zz:11:22:33:44:55".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_broadcast_and_multicast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::local_from_id(7).is_broadcast());
        assert!(!MacAddr::local_from_id(7).is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn local_from_id_unique_and_local() {
        let a = MacAddr::local_from_id(1);
        let b = MacAddr::local_from_id(2);
        assert_ne!(a, b);
        assert_eq!(a.octets()[0], 0x02);
    }

    #[test]
    fn ipv4net_contains() {
        let n: Ipv4Net = "192.168.1.0/24".parse().unwrap();
        assert!(n.contains(Ipv4Addr::new(192, 168, 1, 255)));
        assert!(!n.contains(Ipv4Addr::new(192, 168, 2, 0)));
        assert!(Ipv4Net::ANY.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn ipv4net_host_route() {
        let h = Ipv4Net::host(Ipv4Addr::new(10, 0, 0, 1));
        assert!(h.contains(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!h.contains(Ipv4Addr::new(10, 0, 0, 2)));
    }

    #[test]
    fn ipv4net_mask_edges() {
        assert_eq!(Ipv4Net::ANY.mask(), 0);
        assert_eq!(Ipv4Net::host(Ipv4Addr::UNSPECIFIED).mask(), u32::MAX);
        let n: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        assert_eq!(n.mask(), 0xff00_0000);
    }

    #[test]
    fn ipv4net_overlaps() {
        let a: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let b: Ipv4Net = "10.1.0.0/16".parse().unwrap();
        let c: Ipv4Net = "11.0.0.0/8".parse().unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(Ipv4Net::ANY.overlaps(&c));
    }

    #[test]
    fn ipv4net_parse_rejects_garbage() {
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Net>().is_err());
        assert!("hello".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn ipv4net_parse_bare_addr_is_host() {
        let n: Ipv4Net = "10.0.0.1".parse().unwrap();
        assert_eq!(n.len, 32);
    }
}
