//! Quickstart: every block of the paper's Fig. 2 in ~60 lines.
//!
//! Builds a small IXP fabric (Topology), configures policies (Policy
//! Generator), drives a gravity-model workload through the fluid data
//! plane (Events + Traffic statistics), and prints the monitoring output.
//!
//! Run with: `cargo run --example quickstart`

use horse::prelude::*;

fn main() {
    // 1. Topology: 20 members on a 4-edge / 2-core IXP fabric.
    let mut params = IxpScenarioParams::default();
    params.fabric.members = 20;
    params.fabric.edge_switches = 4;
    params.fabric.core_switches = 2;
    params.offered_bps = 4e9;
    // larger flows => fewer flow events; incremental allocation keeps the
    // per-event cost proportional to the affected component
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.3,
        min_bytes: 1_000_000,
        max_bytes: 2_000_000_000,
    };
    params.horizon = SimTime::from_secs(10);
    params.seed = 7;

    // 2. Policies (the "Policy configuration" document of Fig. 2).
    params.policy = PolicySpec::new()
        .with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp })
        .with(PolicyRule::RateLimit {
            src: "m2".into(),
            dst: "m4".into(),
            rate_mbps: 500.0,
        });
    println!("policy configuration:\n{}\n", params.policy.to_json());

    // 3. Simulate.
    let scenario = Scenario::ixp(&params);
    let mut sim = Simulation::new(scenario, SimConfig::default()).expect("valid scenario");
    let results = sim.run();

    // 4. Monitoring output (link bandwidth + derived statistics).
    println!("{}\n", results.summary_table());
    println!("aggregate fabric load over time:");
    for epoch in results.collector.epochs.iter().take(10) {
        println!(
            "  t={:>5.1}s  load={:>8.3} Gbps  busiest-link={:>5.1}%  active-flows={}",
            epoch.time.as_secs_f64(),
            epoch.aggregate_rate_bps / 1e9,
            epoch.max_utilization * 100.0,
            epoch.active_flows,
        );
    }
}
