//! A sweep campaign driven from code through the umbrella prelude: the
//! same three layers the `horse-lab` CLI uses (spec -> grid -> parallel
//! runner), inline.
//!
//! Run with: `cargo run --release --example sweep_campaign`

use horse::prelude::*;

fn main() {
    let spec = SweepSpec::from_toml(
        r#"
        name = "inline_demo"
        replicates = 2

        [scenario]
        kind = "ixp"
        members = 25
        horizon_secs = 1.0

        [[scenario.policies]]
        type = "load_balancing"
        mode = "ecmp"

        [axes]
        ctrl_latency_us = [0, 1000]
        alloc_mode = ["full", "incremental"]
        "#,
    )
    .expect("spec parses");

    let plans = expand(&spec).expect("spec expands");
    println!("campaign `{}`: {} runs", spec.name, plans.len());
    for p in &plans {
        println!("  run {:>2}  {}", p.index, p.label());
    }

    let report = run_sweep(&spec, 2).expect("campaign runs");
    println!("\n{}", report.aggregate_text());
    println!("{}", report.timing_text());
}
