//! Flow-level vs packet-level (experiments E1/E3, example-sized): run the
//! identical workload through Horse's fluid plane and through the
//! packet-level reference simulator, and print simulation time and
//! accuracy side by side — the trade-off the whole paper is about.
//!
//! Run with: `cargo run --release --example scale_comparison`

use horse::compare::compare_on_ixp;
use horse::prelude::*;

fn main() {
    println!("members | flows | fluid wall | packet wall | speedup | fct-err p50 | util MAE");
    println!("--------+-------+------------+-------------+---------+-------------+---------");
    for members in [8usize, 16, 32] {
        let flows = members * 8;
        let report = compare_on_ixp(members, flows, SimTime::from_secs(5), 1);
        println!(
            "{members:>7} | {flows:>5} | {:>9.4}s | {:>10.4}s | {:>6.1}x | {:>10.1}% | {:>8.4}",
            report.fluid_wall,
            report.packet_wall,
            report.speedup(),
            report.fct_rel_error.p50 * 100.0,
            report.util_mae,
        );
    }
    println!(
        "\nThe flow-level abstraction processes orders of magnitude fewer events\n\
         (every packet×hop collapses into per-flow rate changes) while keeping\n\
         link utilization and flow completion times close to packet-level truth."
    );
}
