//! Link-failure dynamics: fail an edge→core cable mid-run and watch the
//! control plane react — port-status notification, path recomputation,
//! rule re-installation, and the traffic shifting to the surviving core.
//!
//! This exercises the paper's "reaction of the controller to specific
//! network events" requirement end to end.
//!
//! Run with: `cargo run --example failover`

use horse::dataplane::DemandModel;
use horse::prelude::*;

fn main() {
    // 2 edges × 2 cores: every member pair has two disjoint fabric paths.
    let fabric = builders::ixp_fabric(&IxpFabricParams {
        members: 8,
        edge_switches: 2,
        core_switches: 2,
        member_port_speeds: vec![Rate::gbps(10.0)],
        uplink_speed: Rate::gbps(10.0), // low enough that load is visible
        ..Default::default()
    });
    let horizon = SimTime::from_secs(30);
    let mut scenario = Scenario::bare(fabric.topology.clone(), horizon);
    scenario.members = fabric.members.clone();
    scenario.policy = PolicySpec::new().with(PolicyRule::LoadBalancing { mode: LbMode::Ecmp });

    // Long-lived CBR flows crossing the fabric (even members sit on edge
    // 1, odd members on edge 2); distinct ports spread them over the ECMP
    // buckets.
    for i in 0..16usize {
        let spec = scenario
            .flow_between(
                fabric.members[(i * 2) % 8],
                fabric.members[(i * 2 + 1) % 8],
                AppClass::Https,
                30_000 + i as u16 * 7,
                None,
                DemandModel::Cbr(Rate::mbps(500.0)),
            )
            .expect("members exist");
        scenario.explicit_flows.push((SimTime::from_secs(1), spec));
    }

    // Fail the first edge→core cable at t=10s, restore at t=20s.
    let e1 = fabric.edges[0];
    let cable = fabric
        .topology
        .out_links(e1)
        .find(|(_, l)| {
            fabric
                .topology
                .node(l.dst)
                .map(|n| n.kind.is_switch())
                .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .expect("uplink exists");
    scenario
        .failures
        .push((SimTime::from_secs(10), cable, false));
    scenario
        .failures
        .push((SimTime::from_secs(20), cable, true));

    let config = SimConfig::default().with_stats_epoch(Some(SimDuration::from_secs(1)));
    let mut sim = Simulation::new(scenario, config).expect("valid scenario");
    let results = sim.run();

    // Show utilization of both uplinks around the failure window.
    let uplinks: Vec<LinkId> = fabric
        .topology
        .out_links(e1)
        .filter(|(_, l)| {
            fabric
                .topology
                .node(l.dst)
                .map(|n| n.kind.is_switch())
                .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .collect();
    println!("edge-1 uplink utilization over time (failure at 10s, repair at 20s):");
    println!("  time  | uplink-1 | uplink-2");
    if let (Some(s1), Some(s2)) = (
        results.collector.link_series(uplinks[0]),
        results.collector.link_series(uplinks[1]),
    ) {
        for (p1, p2) in s1.points().iter().zip(s2.points()) {
            println!(
                "  {:>4.0}s | {:>7.1}% | {:>7.1}%",
                p1.0.as_secs_f64(),
                p1.1 * 100.0,
                p2.1 * 100.0
            );
        }
    }
    println!("\n{}", results.summary_table());
}
