//! Figure 1 of the paper, executable: five policy classes coexisting on
//! the edge/core fabric — load balancing, application-specific peering,
//! blackholing, source routing and rate limiting.
//!
//! Prints where each policy's rules landed and how each demo flow fared,
//! demonstrating the interactions the paper motivates (e.g. the rate
//! limiter undermining a TCP transfer; the blackhole shadowing a victim).
//!
//! Run with: `cargo run --example policy_fabric`

use horse::controlplane::{validate_rules, PolicyGenerator};
use horse::dataplane::DemandModel;
use horse::prelude::*;

fn main() {
    let horizon = SimTime::from_secs(30);
    let mut scenario = Scenario::figure1(horizon, 99);
    scenario.workload = None; // demo flows only, so the output is readable

    // One demonstration flow per policy interaction.
    let demo = [
        // (src, dst, app, label)
        (
            0usize,
            2usize,
            AppClass::Http,
            "m1->m3 http (app peering pins the alternate path)",
        ),
        (
            0,
            2,
            AppClass::Https,
            "m1->m3 https (follows default LB, not the peering path)",
        ),
        (0, 3, AppClass::Https, "m1->m4 (source-routed via c2)"),
        (
            1,
            3,
            AppClass::Https,
            "m2->m4 (TCP through the 500 Mbps rate limit)",
        ),
        (
            0,
            1,
            AppClass::Https,
            "m1->m2 (m2 is blackholed: must drop)",
        ),
    ];
    for (i, (s, d, app, _)) in demo.iter().enumerate() {
        let spec = scenario
            .flow_between(
                scenario.members[*s],
                scenario.members[*d],
                *app,
                20_000 + i as u16,
                Some(ByteSize::mib(64)),
                DemandModel::Greedy,
            )
            .expect("members exist");
        scenario.explicit_flows.push((SimTime::from_secs(1), spec));
    }

    // Show the compiled rules and the composition validation verdict.
    let mut gen =
        PolicyGenerator::new(scenario.policy.clone(), &scenario.topology).expect("valid spec");
    let compiled = gen.compile(&scenario.topology);
    let report = validate_rules(&compiled.msgs);
    println!(
        "policy generator compiled {} OpenFlow messages ({} warnings, {} errors)",
        compiled.msgs.len(),
        report.warnings.len(),
        report.errors.len()
    );
    for w in gen.report.warnings.iter().chain(report.warnings.iter()) {
        println!("  warning: {w}");
    }

    let mut sim = Simulation::new(scenario, SimConfig::default()).expect("valid scenario");
    let results = sim.run();

    println!("\nper-flow outcomes:");
    for (record, (_, _, _, label)) in sim.fluid().records().iter().zip(demo.iter()) {
        println!(
            "  {label}\n      -> {} {:.1} MiB in {:.3}s ({:.1} Mbps)",
            if record.completed {
                "completed"
            } else {
                "incomplete"
            },
            record.bytes / 1048576.0,
            record.fct_secs(),
            record.avg_rate_bps() / 1e6,
        );
    }
    for drop in sim.fluid().drops() {
        println!("  dropped: {} ({:?})", drop.key, drop.cause);
    }
    println!("\n{}", results.summary_table());
}
