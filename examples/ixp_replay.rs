//! IXP replay (experiment E4, scaled to example size): a 24-hour diurnal
//! traffic day over a 100-member IXP fabric, replayed in simulated time.
//!
//! This is the paper's promised evaluation — "replaying its behavior over
//! time" — with the synthetic stand-in for the proprietary IXP trace
//! (gravity matrix × diurnal profile; see DESIGN.md §4). Prints the
//! aggregate load curve (the famous IXP daily sawtooth) and the wall-clock
//! cost of simulating the day.
//!
//! Run with: `cargo run --release --example ixp_replay [hours]`
//! (default 4 simulated hours; pass 24 for the full day)

use horse::prelude::*;

fn main() {
    let hours = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(4);

    let mut params = IxpScenarioParams::default();
    params.fabric.members = 100;
    params.fabric.edge_switches = 8;
    params.fabric.core_switches = 4;
    params.fabric.member_port_speeds = vec![Rate::gbps(10.0)];
    params.offered_bps = 20e9; // peak aggregate
    params.sizes = FlowSizeDist::Pareto {
        alpha: 1.2,
        min_bytes: 2_000_000,
        max_bytes: 5_000_000_000,
    };
    params.diurnal = Some(DiurnalProfile::default());
    params.horizon = SimTime::from_secs(hours * 3600);
    params.seed = 20160822; // SIGCOMM'16 week

    let scenario = Scenario::ixp(&params);
    let config = SimConfig::default()
        .with_alloc_mode(AllocMode::Incremental)
        .with_stats_epoch(Some(SimDuration::from_secs(300))); // 5-min bins

    println!(
        "replaying {hours}h over {} members ({} nodes, {} links)…",
        params.fabric.members,
        scenario.topology.node_count(),
        scenario.topology.link_count()
    );
    let mut sim = Simulation::new(scenario, config).expect("valid scenario");
    let results = sim.run();

    println!("\naggregate IXP load (5-minute epochs):");
    let max_rate = results
        .collector
        .epochs
        .iter()
        .map(|e| e.aggregate_rate_bps)
        .fold(1.0, f64::max);
    for epoch in results.collector.epochs.iter().step_by(6) {
        let bar = "#".repeat((epoch.aggregate_rate_bps / max_rate * 60.0) as usize);
        println!(
            "  {:>5.1}h {:>8.2} Gbps |{bar}",
            epoch.time.as_secs_f64() / 3600.0,
            epoch.aggregate_rate_bps / 1e9,
        );
    }
    println!("\n{}", results.summary_table());
}
